#include "platform/platform.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "platform/provider_models.h"

namespace coldstart::platform {

using trace::ColdStartRecord;
using trace::FunctionId;
using trace::PodId;
using trace::RegionId;
using workload::FunctionSpec;

namespace {

// Smallest b with (1 << b) >= n; 0 for n == 1.
uint32_t CeilLog2(uint32_t n) {
  uint32_t bits = 0;
  while ((uint32_t{1} << bits) < n) {
    ++bits;
  }
  return bits;
}

}  // namespace

Platform::Platform(const workload::Population& population,
                   const std::vector<workload::RegionProfile>& profiles,
                   const workload::Calendar& calendar, sim::Simulator& sim,
                   trace::TraceSink& sink, Options options, PlatformPolicy* policy)
    : population_(population),
      profiles_(profiles),
      calendar_(calendar),
      sim_(sim),
      sink_(sink),
      options_(options),
      policy_(policy),
      arrival_cursor_(this) {
  COLDSTART_CHECK(!profiles_.empty());
  // One independent substream, pod-id namespace, and request-id namespace per
  // (region, cell): a cell's draw sequence must not depend on what other cells
  // (or regions) do, or a sub-region sharded run could not reproduce the serial
  // run. The pod-id region field holds indices 0 .. 2^(32-shift) - 1, so
  // exactly 2^(32-shift) regions fit.
  COLDSTART_CHECK_LE(profiles_.size(),
                     static_cast<size_t>(1) << (32 - kPodIdRegionShift));
  cells_ = options_.cells_per_region;
  COLDSTART_CHECK_GE(cells_, 1u);
  if (cells_ > 1) {
    COLDSTART_CHECK(options_.function_cells != nullptr);
    COLDSTART_CHECK_EQ(options_.function_cells->size(),
                       population_.functions.size());
  }
  cell_bits_ = CeilLog2(cells_);
  COLDSTART_CHECK_LT(cell_bits_, static_cast<uint32_t>(kPodIdRegionShift));
  pod_seq_bits_ = static_cast<uint32_t>(kPodIdRegionShift) - cell_bits_;
  pod_seq_mask_ = (trace::PodId{1} << pod_seq_bits_) - 1;
  const uint64_t rng_base = MixHash(options.seed, HashString("platform"));
  const size_t num_states = profiles_.size() * cells_;
  rngs_.reserve(num_states);
  for (size_t r = 0; r < profiles_.size(); ++r) {
    if (cells_ == 1) {
      // The legacy per-region stream, bit for bit (the golden digest pins it).
      rngs_.emplace_back(MixHash(rng_base, r));
    } else {
      for (uint32_t c = 0; c < cells_; ++c) {
        rngs_.emplace_back(MixHash(MixHash(rng_base, r), c));
      }
    }
  }
  next_pod_seq_.assign(num_states, 0);
  next_request_seq_.assign(num_states, 0);
  models_.reserve(num_states);
  pools_.reserve(num_states);
  for (const auto& profile : profiles_) {
    for (uint32_t cell = 0; cell < cells_; ++cell) {
      // One model instance per cell (not per region): any mutable model state is
      // cell-scoped, so serial and sub-region-sharded runs accumulate it
      // identically. Stateless models make the per-cell copies indistinguishable
      // from the old one-pipeline-per-region layout.
      models_.push_back(MakeColdStartModel(profile, calendar_));
      std::vector<ResourcePool> cell_pools;
      cell_pools.reserve(trace::kNumResourceConfigs);
      for (int c = 0; c < trace::kNumResourceConfigs; ++c) {
        const int base = profile.pool_base_size[static_cast<size_t>(c)];
        // Cells split the region's pool capacity without losing a unit to
        // rounding: cell k of C gets base*(k+1)/C - base*k/C (the whole base at
        // C == 1). Refill splits as an exact double division (x / 1.0 == x).
        const int target =
            base * static_cast<int>(cell + 1) / static_cast<int>(cells_) -
            base * static_cast<int>(cell) / static_cast<int>(cells_);
        cell_pools.emplace_back(target, profile.pool_refill_per_min / cells_);
      }
      pools_.push_back(std::move(cell_pools));
    }
  }
  loads_.resize(num_states);
  visible_cold_starts_.assign(profiles_.size(), 0);
  cold_start_latency_sum_us_.assign(profiles_.size(), 0);
  cost_ledger_ = ResourceCostLedger(profiles_.size());
  states_.resize(population_.functions.size());

  // Function-level table (one row per function, like the paper's third stream).
  // A resuming platform skips the emission: the restored sink already holds it.
  if (!options_.resuming) {
    for (const auto& f : population_.functions) {
      trace::FunctionRecord rec;
      rec.function_id = f.id;
      rec.user_id = f.user;
      rec.region = f.region;
      rec.runtime = f.runtime;
      rec.primary_trigger = f.primary_trigger;
      rec.trigger_mask = f.trigger_mask;
      rec.config = f.config;
      sink_.OnFunction(rec);
    }
  }

  if (policy_ != nullptr) {
    policy_->OnAttach(*this);
    // The minute tick is platform-managed (not sim::SchedulePeriodic) so its
    // (time, seq) key is recorded and a checkpoint restore can re-queue it.
    // Seq consumption is identical to the periodic helper it replaced: one seq
    // here, one per reschedule after the tick body runs. On resume the restored
    // state re-queues the pending tick instead.
    if (!options_.resuming && calendar_.horizon() > 0) {
      SchedulePolicyTick(0);
    }
  }
}

void Platform::SchedulePolicyTick(SimTime t) {
  policy_tick_time_ = t;
  policy_tick_seq_ = sim_.next_seq();
  sim_.ScheduleAt(t, [this] { RunPolicyTick(); });
}

void Platform::RunPolicyTick() {
  // Fire first, then reschedule — the Recur closure this replaces ran the body
  // before consuming the next tick's seq, and the order must match exactly.
  policy_->OnMinuteTick(sim_.now());
  const SimTime next = sim_.now() + kMinute;
  if (next < calendar_.horizon()) {
    SchedulePolicyTick(next);
  } else {
    policy_tick_time_ = -1;
  }
}

Platform::~Platform() {
  if (source_attached_) {
    sim_.AttachSource(nullptr);
  }
}

void Platform::ArrivalCursor::Open(size_t count, uint64_t seq_base) {
  // Day batches never overlap: every arrival of the previous day is strictly
  // earlier than the next day's starter event.
  COLDSTART_CHECK_EQ(next_, limit_);
  next_ = 0;
  limit_ = count;
  seq_base_ = seq_base;
}

bool Platform::ArrivalCursor::Head(SimTime* time, uint64_t* seq) {
  if (next_ == limit_) {
    return false;
  }
  *time = platform_->chunk_.events[next_].time;
  *seq = seq_base_ + next_;
  return true;
}

void Platform::ArrivalCursor::RunHead() {
  const workload::ArrivalEvent* events = platform_->chunk_.events.data();
  const workload::ArrivalEvent& arrival = events[next_];
  // The stream contract requires sorted arrivals (the old per-arrival closures
  // re-ordered them through the queue; the cursor replays them as-is). Fail
  // loudly rather than silently rewinding the clock.
  COLDSTART_CHECK_GE(arrival.time, last_time_);
  last_time_ = arrival.time;
  if (!platform_->options_.batched_arrivals) {
    ++next_;
    platform_->HandleArrival(arrival.function, false);
    return;
  }
  // Batched drain: dispatch the whole same-timestamp run in one call. The day
  // chunk's seq range is contiguous and reserved at the day starter, so every
  // queued event at this timestamp has a seq strictly below the run's first
  // arrival (it already fired) or strictly above its last (it fires after) —
  // no queued event can interleave, and nothing the run itself schedules lands
  // at the same instant (all platform delays are > 0). See docs/determinism.md.
  const size_t begin = next_;
  size_t end = begin + 1;
  while (end < limit_ && events[end].time == arrival.time) {
    ++end;
  }
  next_ = end;
  platform_->HandleArrivalRun(events + begin, end - begin);
  // The simulator counted this RunHead as one event; account for the rest of
  // the run so events_processed matches the per-event path.
  platform_->sim_.AddProcessedEvents(end - begin - 1);
}

void Platform::OpenDayChunk(int64_t day) {
  if (arrival_stream_ == nullptr || !arrival_stream_->NextChunk(&chunk_)) {
    chunk_.events.clear();
    return;  // Exhausted stream: the remaining starters are no-ops.
  }
  // Contract checks are O(1) per day: chunks arrive in day order and their
  // (sorted) events lie inside the day window — a violation would corrupt the
  // (time, seq) total order, so fail loudly here rather than deep in the run.
  COLDSTART_CHECK_EQ(chunk_.day, day);
  if (chunk_.events.empty()) {
    return;
  }
  COLDSTART_CHECK_GE(chunk_.events.front().time, day * kDay);
  COLDSTART_CHECK_LT(chunk_.events.back().time,
                     std::min<SimTime>((day + 1) * kDay, calendar_.horizon()));
  arrival_cursor_.Open(chunk_.events.size(),
                       sim_.ReserveSeqRange(chunk_.events.size()));
}

void Platform::AttachArrivalStream(std::unique_ptr<workload::ArrivalStream> stream) {
  // Arrivals flow through the attached cursor one day-batch at a time: each
  // starter event pulls its day's chunk and reserves the batch's contiguous seq
  // range (the same sequence numbers per-arrival closures would have consumed),
  // so a year of arrivals costs one live chunk plus one starter per day instead
  // of one queued closure per arrival. Scheduling every starter up front (at
  // attach time) keeps starter seq numbers below every run-time event's, exactly
  // like the eagerly scheduled batches they replace — see docs/determinism.md.
  COLDSTART_CHECK(arrival_stream_ == nullptr && !source_attached_);
  arrival_stream_ = std::move(stream);
  if (arrival_stream_ == nullptr) {
    return;
  }
  const SimTime horizon = calendar_.horizon();
  bool any = false;
  starter_seq_base_ = sim_.next_seq();  // Day k's starter is seq base + k.
  for (int64_t day = 0; day * kDay < horizon; ++day) {
    // Wake exactly at the day boundary (covers the t=0 first arrival: day_start
    // is never negative). Anchoring the batch's seq reservation at day start —
    // rather than at "first arrival - 1", which depends on which regions the
    // stream contains — keeps the (time, seq) interleaving of arrivals and
    // handler-scheduled events identical between the serial run and per-region
    // shards.
    sim_.ScheduleAt(day * kDay, [this, day] { OpenDayChunk(day); });
    any = true;
    ++num_starters_;
  }
  if (any) {
    sim_.AttachSource(&arrival_cursor_);
    source_attached_ = true;
  }
}

void Platform::InjectArrivals(std::vector<workload::ArrivalEvent> arrivals) {
  AttachArrivalStream(std::make_unique<workload::MaterializedArrivalStream>(
      std::move(arrivals), workload::NumDayChunks(calendar_.horizon())));
}

const workload::FunctionSpec& Platform::spec(FunctionId function) const {
  return population_.functions.at(function);
}

ResourcePool& Platform::pool(RegionId region, trace::ResourceConfig config) {
  // Capacity-coupled policies see one pool per region; cells > 1 would make
  // this accessor ambiguous, and such policies pin their runs to one cell.
  COLDSTART_CHECK_EQ(cells_, 1u);
  return pools_.at(region).at(static_cast<size_t>(config));
}

const RegionLoadState& Platform::load(RegionId region) const {
  COLDSTART_CHECK_EQ(cells_, 1u);
  return loads_.at(region);
}

bool Platform::HasAvailablePod(FunctionId function) const {
  const int concurrency = population_.functions.at(function).pod_concurrency;
  for (const Pod* pod : states_[function].pods) {
    if (hot(*pod).slots_used < concurrency) {
      return true;
    }
  }
  return false;
}

int Platform::alive_pod_count(FunctionId function) const {
  return static_cast<int>(states_.at(function).pods.size());
}

int64_t Platform::cold_starts(RegionId region) const {
  return visible_cold_starts_.at(region);
}

int64_t Platform::total_cold_starts() const {
  int64_t total = 0;
  for (const int64_t c : visible_cold_starts_) {
    total += c;
  }
  return total;
}

int64_t Platform::cold_start_latency_sum_us(RegionId region) const {
  return cold_start_latency_sum_us_.at(region);
}

uint64_t Platform::pods_created() const {
  uint64_t total = 0;
  for (const trace::PodId seq : next_pod_seq_) {
    total += seq;
  }
  return total;
}

trace::PodId Platform::NewPodId(RegionId region, uint32_t cell) {
  const trace::PodId seq = next_pod_seq_[StateIndex(region, cell)]++;
  // Strict: the last (region, cell, seq) combination would collide with
  // kInvalidPod. At cells_ == 1 this is the legacy region | seq layout exactly.
  COLDSTART_CHECK_LT(seq, pod_seq_mask_);
  return (static_cast<trace::PodId>(region) << kPodIdRegionShift) |
         (static_cast<trace::PodId>(cell) << pod_seq_bits_) | seq;
}

int64_t Platform::scratch_allocations(RegionId region) const {
  int64_t total = 0;
  for (uint32_t cell = 0; cell < cells_; ++cell) {
    for (const auto& pool : pools_.at(StateIndex(region, cell))) {
      total += pool.scratch_count();
    }
  }
  return total;
}

int64_t Platform::prewarm_spawns(RegionId region) const {
  int64_t total = 0;
  for (uint32_t cell = 0; cell < cells_; ++cell) {
    total += loads_.at(StateIndex(region, cell)).prewarm_spawns;
  }
  return total;
}

int64_t Platform::delayed_allocations(RegionId region) const {
  int64_t total = 0;
  for (uint32_t cell = 0; cell < cells_; ++cell) {
    total += loads_.at(StateIndex(region, cell)).delayed_allocations;
  }
  return total;
}

Pod* Platform::FindPodWithSlot(FunctionState& state, int concurrency,
                               SimTime now) const {
  // The scan touches only the SoA hot entries: `concurrency` is hoisted by the
  // caller, so no per-pod spec lookup, and the cold Pod fields stay untouched.
  Pod* best_warm = nullptr;
  Pod* best_warming = nullptr;
  SimTime best_warm_lru = 0;
  SimTime best_warming_ready = 0;
  for (Pod* pod : state.pods) {
    const PodHot& h = hot(*pod);
    if (h.slots_used >= concurrency) {
      continue;
    }
    if (h.ready_time <= now) {
      // Prefer the warm pod that has been idle longest (LRU keeps the fleet compact).
      if (best_warm == nullptr || h.last_busy_end < best_warm_lru) {
        best_warm = pod;
        best_warm_lru = h.last_busy_end;
      }
    } else if (best_warming == nullptr || h.ready_time < best_warming_ready) {
      best_warming = pod;
      best_warming_ready = h.ready_time;
    }
  }
  return best_warm != nullptr ? best_warm : best_warming;
}

trace::ClusterId Platform::PickCluster(const FunctionSpec& spec,
                                       const FunctionState& state, RegionId region) {
  if (spec.single_cluster) {
    return spec.home_cluster;
  }
  // Hash-affinity with power-of-two spillover: compare the home cluster against one
  // random alternative and place the pod where this function has fewer pods (§2.1's
  // "balance traffic between clusters, starting pods in a new cluster").
  const trace::ClusterId alt = static_cast<trace::ClusterId>(
      (spec.home_cluster + 1 +
       rng(region, CellOf(spec.id)).NextBounded(trace::kClustersPerRegion - 1)) %
      trace::kClustersPerRegion);
  int home_count = 0;
  int alt_count = 0;
  for (const Pod* pod : state.pods) {
    if (pod->region != region) {
      continue;
    }
    if (pod->cluster == spec.home_cluster) {
      ++home_count;
    } else if (pod->cluster == alt) {
      ++alt_count;
    }
  }
  return home_count <= alt_count ? spec.home_cluster : alt;
}

Pod* Platform::StartColdStart(const FunctionSpec& spec, RegionId region, bool prewarmed,
                              SimDuration extra_sched_us) {
  const SimTime now = sim_.now();
  FunctionState& state = states_[spec.id];
  const uint32_t cell = CellOf(spec.id);
  const size_t idx = StateIndex(region, cell);
  RegionLoadState& load = loads_[idx];

  ResourcePool& pool = pools_[idx][static_cast<size_t>(spec.config)];
  load.ObserveColdStart(now);  // The event contributes to its own congestion window.
  ColdStartComponents comp =
      models_[idx]->Compute(spec, pool, load, now, rng(region, cell));
  comp.scheduling += extra_sched_us;
  if (comp.from_scratch) {
    cost_ledger_.AddScratchCreation(region);
  }

  auto [pod, handle] = pod_slab_.Allocate();
  if (pod_hot_.size() < pod_slab_.capacity()) {
    pod_hot_.resize(pod_slab_.capacity());
  }
  pod->self = handle;
  pod->id = NewPodId(region, cell);
  pod->function = spec.id;
  pod->region = region;
  pod->cluster = PickCluster(spec, state, region);
  pod->config = spec.config;
  pod->cold_start_begin = now;
  pod->cold_start_us = static_cast<uint32_t>(std::min<SimDuration>(comp.total(), UINT32_MAX));
  pod->prewarmed = prewarmed;
  // Reset the slot's hot entry (it may carry a freed predecessor's values).
  PodHot& h = pod_hot_[handle.index];
  h.ready_time = now + comp.total();
  h.last_busy_end = h.ready_time;
  h.slots_used = 0;

  // Load counters stay elevated for the duration of the pipeline; the decrements are
  // what make congestion oscillate with the cold-start rate.
  ++load.active_cold_starts;
  ++load.active_code_deploys;
  const bool has_deps = spec.dep_size_kb > 0;
  if (has_deps) {
    ++load.active_dep_deploys;
  }
  pod->ready_decr_seq = sim_.next_seq();
  sim_.ScheduleAt(h.ready_time, MakeLoadDecrementHandler(idx, has_deps));
  ++load.total_cold_starts;

  if (prewarmed) {
    ++load.prewarm_spawns;
  } else {
    ++visible_cold_starts_[region];
    cold_start_latency_sum_us_[region] += comp.total();
    ColdStartRecord rec;
    rec.timestamp = now;
    rec.pod_id = pod->id;
    rec.function_id = spec.id;
    rec.user_id = spec.user;
    rec.region = region;
    rec.cluster = pod->cluster;
    rec.cold_start_us = pod->cold_start_us;
    rec.pod_alloc_us = static_cast<uint32_t>(comp.pod_alloc);
    rec.deploy_code_us = static_cast<uint32_t>(comp.deploy_code);
    rec.deploy_dep_us = static_cast<uint32_t>(comp.deploy_dep);
    rec.scheduling_us = static_cast<uint32_t>(comp.scheduling);
    sink_.OnColdStart(rec);
    if (policy_ != nullptr) {
      policy_->OnColdStart(spec, now, comp.total());
    }
  }

  state.pods.push_back(pod);
  return pod;
}

sim::Simulator::Handler Platform::MakeLoadDecrementHandler(size_t load_index,
                                                           bool has_deps) {
  return [this, load_index, has_deps] {
    RegionLoadState& l = loads_[load_index];
    --l.active_cold_starts;
    --l.active_code_deploys;
    if (has_deps) {
      --l.active_dep_deploys;
    }
  };
}

void Platform::AssignRequest(Pod* pod, const FunctionSpec& spec, SimTime arrival) {
  PodHot& h = hot(*pod);
  const SimTime exec_start = std::max(arrival, h.ready_time);
  if (h.slots_used == 0 && exec_start > h.last_busy_end) {
    // The pod sat warm and empty from its last busy end until this request;
    // the interval is warm-idle capacity the cost ledger charges at death.
    pod->idle_us += exec_start - h.last_busy_end;
  }
  ++h.slots_used;
  // Any pending keep-alive is void: the pod is busy again.
  ++pod->keepalive_gen;
  double exec_us = std::exp(std::log(spec.exec_median_us) +
                            spec.exec_sigma *
                                rng(pod->region, CellOf(spec.id)).NextGaussian());
  exec_us = std::clamp(exec_us, 100.0, 600e6);
  const uint32_t exec = static_cast<uint32_t>(exec_us);
  const SimTime exec_end = exec_start + exec;

  // The completion's payload lives in the in-flight registry (checkpointable);
  // the queued closure is just (this, registry handle).
  auto [req, reg] = inflight_.Allocate();
  req->pod = pod->self;
  req->exec_start = exec_start;
  req->exec_end = exec_end;
  req->exec_us = exec;
  req->function = spec.id;
  req->seq = sim_.next_seq();
  sim_.ScheduleAt(exec_end, [this, reg] { RunRequestCompletion(reg); });
}

void Platform::RunRequestCompletion(SlabHandle reg) {
  InFlightRequest* req = inflight_.Resolve(reg);
  COLDSTART_CHECK(req != nullptr);
  const InFlightRequest copy = *req;
  inflight_.Free(reg);
  OnRequestComplete(copy.pod, copy.exec_start, copy.exec_end, copy.exec_us,
                    population_.functions[copy.function]);
}

void Platform::OnRequestComplete(SlabHandle handle, SimTime exec_start,
                                 SimTime exec_end, uint32_t exec_us,
                                 const FunctionSpec& spec) {
  Pod* pod = pod_slab_.Resolve(handle);
  COLDSTART_CHECK(pod != nullptr);  // A pod with a bound request cannot die.
  PodHot& h = hot(*pod);
  COLDSTART_CHECK_GT(h.slots_used, 0);
  --h.slots_used;
  ++pod->served;
  h.last_busy_end = std::max(h.last_busy_end, exec_end);

  // The pod's function equals spec.id here, so one cell lookup covers the id
  // mint, the resource draws, and the fan-out below.
  const uint32_t cell = CellOf(spec.id);
  const size_t idx = StateIndex(pod->region, cell);
  if (options_.record_requests) {
    trace::RequestRecord rec;
    rec.timestamp = exec_start;
    // Request ids mix a per-(region, cell) counter under a matching salt, so the
    // id stream is identical whether the cell ran alone (sharded) or alongside
    // the others. At cells_ == 1 the salt is the legacy per-region one exactly.
    uint64_t salt = MixHash(0x9e3779b9, pod->region);
    if (cells_ > 1) {
      salt = MixHash(salt, cell);
    }
    rec.request_id = MixHash(salt, next_request_seq_[idx]++);
    rec.pod_id = pod->id;
    rec.function_id = spec.id;
    rec.user_id = spec.user;
    rec.region = pod->region;
    rec.cluster = pod->cluster;
    rec.execution_time_us = exec_us;
    double cpu =
        spec.cpu_mean_cores * std::exp(0.3 * rng(pod->region, cell).NextGaussian());
    cpu = std::clamp(cpu, 0.005,
                     static_cast<double>(CpuMillicoresOf(spec.config)) / 1000.0);
    rec.cpu_millicores = static_cast<uint16_t>(cpu * 1000.0);
    double mem_kb =
        spec.mem_mean_kb * std::exp(0.25 * rng(pod->region, cell).NextGaussian());
    mem_kb = std::clamp(mem_kb, 1024.0,
                        1024.0 * static_cast<double>(MemoryMbOf(spec.config)));
    rec.memory_kb = static_cast<uint32_t>(mem_kb);
    sink_.OnRequest(rec);
  }
  ++loads_[idx].total_requests;

  // Workflow fan-out: downstream functions are invoked when the parent finishes.
  // Draws come from the parent's home-(region, cell) stream (children are wired
  // within the region and share the parent's cell by construction —
  // workload/function_cells.h — so sharded runs replay exactly this sequence).
  for (const auto& edge : spec.children) {
    Rng& fanout_rng = rng(spec.region, cell);
    if (fanout_rng.NextBool(edge.probability)) {
      const SimDuration delay = FromSeconds(fanout_rng.Uniform(0.005, 0.05));
      ScheduleInvoke(exec_end + delay, edge.child, /*delay_exempt=*/false);
    }
  }

  if (h.slots_used == 0) {
    ArmKeepAlive(pod);
  }
}

void Platform::ScheduleInvoke(SimTime t, FunctionId fid, bool delay_exempt) {
  // Deferred HandleArrival through the pending-invoke registry, so the event
  // survives a checkpoint with its original (time, seq) key.
  auto [inv, reg] = invokes_.Allocate();
  inv->time = t;
  inv->seq = sim_.next_seq();
  inv->function = fid;
  inv->delay_exempt = delay_exempt;
  sim_.ScheduleAt(t, [this, reg] { RunInvoke(reg); });
}

void Platform::RunInvoke(SlabHandle reg) {
  PendingInvoke* inv = invokes_.Resolve(reg);
  COLDSTART_CHECK(inv != nullptr);
  const PendingInvoke copy = *inv;
  invokes_.Free(reg);
  HandleArrival(copy.function, copy.delay_exempt);
}

sim::Simulator::Handler Platform::MakeKeepAliveHandler(SlabHandle handle,
                                                       uint64_t gen) {
  return [this, handle, gen] {
    Pod* p = pod_slab_.Resolve(handle);
    if (p == nullptr) {
      return;  // Already dead (the slot's generation moved on).
    }
    if (p->keepalive_gen != gen || hot(*p).slots_used > 0) {
      return;  // Was re-used since; a newer keep-alive owns it.
    }
    KillPod(p, sim_.now());
  };
}

void Platform::ArmKeepAlive(Pod* pod) {
  const uint64_t gen = ++pod->keepalive_gen;
  const FunctionSpec& spec = population_.functions[pod->function];
  const SimDuration keep_alive = policy_ != nullptr
                                     ? policy_->KeepAliveFor(spec, sim_.now())
                                     : options_.default_keep_alive;
  pod->ka_time = sim_.now() + keep_alive;
  pod->ka_seq = sim_.next_seq();
  sim_.ScheduleAt(pod->ka_time, MakeKeepAliveHandler(pod->self, gen));
}

void Platform::KillPod(Pod* pod, SimTime death_time) {
  const FunctionSpec& spec = population_.functions[pod->function];
  const PodHot& h = hot(*pod);
  if (workload::TraitsOf(spec.runtime).pool_backed) {
    pools_[StateIndex(pod->region, CellOf(pod->function))]
          [static_cast<size_t>(pod->config)]
              .Release(death_time);
  }

  trace::PodLifetimeRecord rec;
  rec.pod_id = pod->id;
  rec.function_id = pod->function;
  rec.region = pod->region;
  rec.cluster = pod->cluster;
  rec.config = pod->config;
  rec.cold_start_begin = pod->cold_start_begin;
  rec.ready_time = h.ready_time;
  rec.last_busy_end = h.last_busy_end;
  rec.death_time = death_time;
  rec.cold_start_us = pod->cold_start_us;
  rec.requests_served = pod->served;
  sink_.OnPodLifetime(rec);

  // Resource accounting: lifetime, warm-idle total (completed intervals plus the
  // final idle tail), and the model's snapshot surcharge over the lifetime. All
  // integer µs, so the ledger's sums are order-invariant across geometries.
  const int64_t lifetime_us = death_time - pod->cold_start_begin;
  int64_t warm_idle_us = pod->idle_us;
  if (death_time > h.last_busy_end && h.slots_used == 0) {
    warm_idle_us += death_time - h.last_busy_end;
  }
  const double snapshot_mb =
      models_[StateIndex(pod->region, CellOf(pod->function))]
          ->snapshot_memory_mb_per_pod();
  cost_ledger_.AddPodDeath(pod->region, lifetime_us, warm_idle_us, snapshot_mb);

  auto& pods = states_[pod->function].pods;
  const auto it = std::find(pods.begin(), pods.end(), pod);
  COLDSTART_CHECK(it != pods.end());
  *it = pods.back();
  pods.pop_back();
  pod_slab_.Free(pod->self);
}

void Platform::HandleArrival(FunctionId fid, bool delay_exempt) {
  HandleArrivalBatch(fid, 1, delay_exempt);
}

void Platform::HandleArrivalRun(const workload::ArrivalEvent* events, size_t count) {
  // The chunk is (time, function)-sorted, so a same-timestamp run visits each
  // function's arrivals as one contiguous group — batching is free.
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && events[j].function == events[i].function) {
      ++j;
    }
    HandleArrivalBatch(events[i].function, j - i, /*delay_exempt=*/false);
    i = j;
  }
}

void Platform::HandleArrivalBatch(FunctionId fid, size_t count, bool delay_exempt) {
  // The spec/state/cell lookups are hoisted across the batch; everything else
  // runs per arrival, in order, exactly as `count` HandleArrival calls would —
  // each iteration must observe the slot/load mutations of the previous one.
  const FunctionSpec& fspec = population_.functions.at(fid);
  const SimTime now = sim_.now();
  const size_t load_idx = StateIndex(fspec.region, CellOf(fid));
  FunctionState& state = states_[fid];
  const int concurrency = fspec.pod_concurrency;

  for (size_t k = 0; k < count; ++k) {
    if (policy_ != nullptr) {
      policy_->OnArrival(fspec, now);
      if (!fspec.children.empty()) {
        policy_->OnParentRequestStart(fspec, now);
      }
      if (!delay_exempt && !trace::IsSynchronous(fspec.primary_trigger)) {
        const SimDuration delay = policy_->AdmissionDelay(fspec, now, loads_[load_idx]);
        if (delay > 0) {
          ++loads_[load_idx].delayed_allocations;
          ScheduleInvoke(now + delay, fid, /*delay_exempt=*/true);
          continue;
        }
      }
    }

    Pod* pod = FindPodWithSlot(state, concurrency, now);
    if (pod == nullptr) {
      RegionId region = fspec.region;
      SimDuration extra_sched = 0;
      if (policy_ != nullptr) {
        const RegionId routed = policy_->RouteColdStart(fspec, now);
        if (routed != fspec.region && routed < profiles_.size()) {
          region = routed;
          extra_sched = FromSeconds(profiles_[fspec.region].inter_region_rtt_ms / 1000.0);
        }
      }
      pod = StartColdStart(fspec, region, /*prewarmed=*/false, extra_sched);
    }
    AssignRequest(pod, fspec, now);
  }
}

void Platform::SpawnPrewarmedPod(FunctionId function, RegionId region,
                                 SimDuration initial_keep_alive) {
  const FunctionSpec& fspec = population_.functions.at(function);
  Pod* pod = StartColdStart(fspec, region, /*prewarmed=*/true, 0);
  // The prewarmed pod idles from readiness; give it the requested survival window.
  const uint64_t gen = ++pod->keepalive_gen;
  pod->ka_time = hot(*pod).ready_time + initial_keep_alive;
  pod->ka_seq = sim_.next_seq();
  sim_.ScheduleAt(pod->ka_time, MakeKeepAliveHandler(pod->self, gen));
}

namespace {

// Slab structure serialization: capacity, the LIFO freelist, and each slot's
// (generation, alive) pair. Payloads are written by the caller, field by field,
// over the alive slots in index order.
template <typename T>
void SaveSlabStructure(const Slab<T>& slab, ByteWriter& w) {
  const uint32_t cap = static_cast<uint32_t>(slab.capacity());
  w.U32(cap);
  const std::vector<uint32_t>& free_list = slab.free_list();
  w.U64(free_list.size());
  for (const uint32_t i : free_list) {
    w.U32(i);
  }
  for (uint32_t i = 0; i < cap; ++i) {
    w.U32(slab.slot_generation(i));
  }
  for (uint32_t i = 0; i < cap; ++i) {
    w.U8(slab.slot_alive(i) ? 1 : 0);
  }
}

// Mirror of SaveSlabStructure on an empty slab; returns the alive slot indices
// (in index order) so the caller can fill the payloads.
template <typename T>
std::vector<uint32_t> RestoreSlabStructure(Slab<T>& slab, ByteReader& r) {
  const uint32_t cap = r.U32();
  std::vector<uint32_t> free_list(r.U64());
  for (uint32_t& i : free_list) {
    i = r.U32();
  }
  std::vector<uint32_t> generations(cap);
  for (uint32_t& g : generations) {
    g = r.U32();
  }
  std::vector<uint8_t> alive(cap);
  for (uint8_t& a : alive) {
    a = r.U8();
  }
  std::vector<uint32_t> alive_indices;
  for (uint32_t i = 0; i < cap; ++i) {
    if (alive[i] != 0) {
      alive_indices.push_back(i);
    }
  }
  slab.RestoreStructure(cap, std::move(free_list), generations, alive);
  return alive_indices;
}

}  // namespace

void Platform::SaveCheckpointState(ByteWriter& w) const {
  const SimTime now = sim_.now();
  // Quiescent day boundary: every event < the boundary fired, the live chunk is
  // drained, and every pending event is reconstructible from the bookkeeping.
  COLDSTART_CHECK_EQ((now + 1) % kDay, 0);
  COLDSTART_CHECK(arrival_cursor_.drained());

  // RNG substreams and id namespaces.
  w.U64(rngs_.size());
  for (const Rng& r : rngs_) {
    uint64_t words[4];
    r.SaveState(words);
    w.Raw(words, sizeof(words));
  }
  for (const trace::PodId v : next_pod_seq_) {
    w.U64(v);
  }
  for (const uint64_t v : next_request_seq_) {
    w.U64(v);
  }
  for (const int64_t v : visible_cold_starts_) {
    w.I64(v);
  }
  for (const int64_t v : cold_start_latency_sum_us_) {
    w.I64(v);
  }

  // Per-region load counters (doubles travel as bit patterns).
  for (const RegionLoadState& l : loads_) {
    w.I64(l.active_cold_starts);
    w.I64(l.active_code_deploys);
    w.I64(l.active_dep_deploys);
    w.I64(l.total_cold_starts);
    w.I64(l.total_requests);
    w.I64(l.prewarm_spawns);
    w.I64(l.delayed_allocations);
    w.F64(l.cold_start_window);
    w.I64(l.window_updated);
  }

  // Resource pools ([region][config], fixed layout from the profiles).
  for (const auto& region_pools : pools_) {
    for (const ResourcePool& pool : region_pools) {
      const ResourcePool::CheckpointState cs = pool.checkpoint_state();
      w.I64(cs.free);
      w.I64(cs.target);
      w.F64(cs.refill_credit);
      w.I64(cs.last_refill);
      w.I64(cs.scratch_count);
    }
  }

  // Cold-start models, per (region, cell): identity plus any mutable model
  // state as a framed blob. Restore re-creates the models from the scenario and
  // refuses to load state written under a different model.
  for (const auto& model : models_) {
    w.Str(std::string(model->name()));
    ByteWriter mw;
    model->SaveModelState(mw);
    w.Str(mw.data());
  }

  // Resource-cost ledger (order-invariant 128-bit sums, two words each).
  cost_ledger_.SaveState(w);

  // Pod slab: structure, then the alive pods field by field (slot index order).
  // `self` is not written — it is re-derived from (index, generation) on restore.
  SaveSlabStructure(pod_slab_, w);
  for (uint32_t i = 0; i < pod_slab_.capacity(); ++i) {
    if (!pod_slab_.slot_alive(i)) {
      continue;
    }
    const Pod& p = pod_slab_.slot_value(i);
    const PodHot& h = pod_hot_[i];
    w.U64(p.id);
    w.U64(p.function);
    w.U32(p.region);
    w.U32(p.cluster);
    w.U8(static_cast<uint8_t>(p.config));
    w.I64(p.cold_start_begin);
    w.I64(h.ready_time);
    w.U32(p.cold_start_us);
    w.I64(h.slots_used);
    w.I64(h.last_busy_end);
    w.U32(p.served);
    w.U64(p.keepalive_gen);
    w.U8(p.prewarmed ? 1 : 0);
    w.I64(p.idle_us);
    w.U64(p.ready_decr_seq);
    w.I64(p.ka_time);
    w.U64(p.ka_seq);
    // An idle alive pod must have a live keep-alive in the future — the event
    // that will kill it. Anything else means the bookkeeping is broken.
    if (h.slots_used == 0) {
      COLDSTART_CHECK_GT(p.ka_time, now);
    }
  }

  // Per-function pod lists, as slot indices in list order (order matters:
  // FindPodWithSlot and PickCluster iterate these).
  w.U64(states_.size());
  for (const FunctionState& state : states_) {
    w.U64(state.pods.size());
    for (const Pod* pod : state.pods) {
      w.U32(pod->self.index);
    }
  }

  // Arrival cursor guard + event-seq bookkeeping.
  w.I64(arrival_cursor_.last_time());
  w.U64(starter_seq_base_);
  w.I64(num_starters_);
  w.I64(policy_tick_time_);
  w.U64(policy_tick_seq_);

  // In-flight completions and pending invokes (registries).
  SaveSlabStructure(inflight_, w);
  for (uint32_t i = 0; i < inflight_.capacity(); ++i) {
    if (!inflight_.slot_alive(i)) {
      continue;
    }
    const InFlightRequest& q = inflight_.slot_value(i);
    w.U32(q.pod.index);
    w.U32(q.pod.gen);
    w.I64(q.exec_start);
    w.I64(q.exec_end);
    w.U32(q.exec_us);
    w.U64(q.function);
    w.U64(q.seq);
  }
  SaveSlabStructure(invokes_, w);
  for (uint32_t i = 0; i < invokes_.capacity(); ++i) {
    if (!invokes_.slot_alive(i)) {
      continue;
    }
    const PendingInvoke& q = invokes_.slot_value(i);
    w.I64(q.time);
    w.U64(q.seq);
    w.U64(q.function);
    w.U8(q.delay_exempt ? 1 : 0);
  }

  // Arrival stream: 2 = no stream attached; 1 = stream state captured;
  // 0 = stream cannot serialize — restore falls back on the determinism
  // contract (reopen and discard the consumed days). The mode byte and the
  // (possibly empty) state blob are written unconditionally so the write/read
  // op sequences stay symmetric in every mode (lint:serde-pair).
  uint8_t stream_mode = 2;
  std::string stream_state;
  if (arrival_stream_ != nullptr) {
    ByteWriter sw;
    if (arrival_stream_->SaveState(sw)) {
      stream_mode = 1;
      stream_state = sw.data();
    } else {
      stream_mode = 0;
    }
  }
  w.U8(stream_mode);
  w.Str(stream_state);
}

void Platform::RestoreCheckpointState(
    ByteReader& r, std::unique_ptr<workload::ArrivalStream> stream) {
  const SimTime now = sim_.now();
  COLDSTART_CHECK(options_.resuming);
  COLDSTART_CHECK_EQ((now + 1) % kDay, 0);
  COLDSTART_CHECK(arrival_stream_ == nullptr && !source_attached_);
  COLDSTART_CHECK_EQ(pod_slab_.capacity(), 0u);

  COLDSTART_CHECK_EQ(r.U64(), rngs_.size());
  for (Rng& rng : rngs_) {
    uint64_t words[4];
    r.Raw(words, sizeof(words));
    rng.RestoreState(words);
  }
  for (trace::PodId& v : next_pod_seq_) {
    v = static_cast<trace::PodId>(r.U64());
  }
  for (uint64_t& v : next_request_seq_) {
    v = r.U64();
  }
  for (int64_t& v : visible_cold_starts_) {
    v = r.I64();
  }
  for (int64_t& v : cold_start_latency_sum_us_) {
    v = r.I64();
  }

  for (RegionLoadState& l : loads_) {
    l.active_cold_starts = static_cast<int>(r.I64());
    l.active_code_deploys = static_cast<int>(r.I64());
    l.active_dep_deploys = static_cast<int>(r.I64());
    l.total_cold_starts = r.I64();
    l.total_requests = r.I64();
    l.prewarm_spawns = r.I64();
    l.delayed_allocations = r.I64();
    l.cold_start_window = r.F64();
    l.window_updated = r.I64();
  }

  for (auto& region_pools : pools_) {
    for (ResourcePool& pool : region_pools) {
      ResourcePool::CheckpointState cs;
      cs.free = static_cast<int>(r.I64());
      cs.target = static_cast<int>(r.I64());
      cs.refill_credit = r.F64();
      cs.last_refill = r.I64();
      cs.scratch_count = r.I64();
      pool.restore_checkpoint_state(cs);
    }
  }

  for (auto& model : models_) {
    // Identity check: the checkpoint must have been written under the same model
    // configuration this platform was constructed with.
    const std::string saved_name = r.Str();
    COLDSTART_CHECK(saved_name == model->name());
    const std::string model_state = r.Str();
    ByteReader mr(model_state);
    model->RestoreModelState(mr);
    COLDSTART_CHECK(mr.AtEnd());
  }

  cost_ledger_.RestoreState(r);
  COLDSTART_CHECK_EQ(cost_ledger_.num_regions(), profiles_.size());

  const std::vector<uint32_t> alive_pods = RestoreSlabStructure(pod_slab_, r);
  pod_hot_.assign(pod_slab_.capacity(), PodHot{});
  for (const uint32_t i : alive_pods) {
    Pod& p = pod_slab_.slot_value(i);
    PodHot& h = pod_hot_[i];
    p.self = SlabHandle{i, pod_slab_.slot_generation(i)};
    p.id = static_cast<trace::PodId>(r.U64());
    p.function = static_cast<trace::FunctionId>(r.U64());
    p.region = static_cast<trace::RegionId>(r.U32());
    p.cluster = static_cast<trace::ClusterId>(r.U32());
    p.config = static_cast<trace::ResourceConfig>(r.U8());
    p.cold_start_begin = r.I64();
    h.ready_time = r.I64();
    p.cold_start_us = r.U32();
    h.slots_used = static_cast<int>(r.I64());
    h.last_busy_end = r.I64();
    p.served = r.U32();
    p.keepalive_gen = r.U64();
    p.prewarmed = r.U8() != 0;
    p.idle_us = r.I64();
    p.ready_decr_seq = r.U64();
    p.ka_time = r.I64();
    p.ka_seq = r.U64();
  }

  COLDSTART_CHECK_EQ(r.U64(), states_.size());
  for (FunctionState& state : states_) {
    COLDSTART_CHECK(state.pods.empty());
    const uint64_t n = r.U64();
    state.pods.reserve(n);
    for (uint64_t k = 0; k < n; ++k) {
      state.pods.push_back(&pod_slab_.slot_value(r.U32()));
    }
  }

  arrival_cursor_.RestoreGuard(r.I64());
  starter_seq_base_ = r.U64();
  num_starters_ = r.I64();
  policy_tick_time_ = r.I64();
  policy_tick_seq_ = r.U64();

  const std::vector<uint32_t> alive_inflight = RestoreSlabStructure(inflight_, r);
  for (const uint32_t i : alive_inflight) {
    InFlightRequest& q = inflight_.slot_value(i);
    q.pod.index = r.U32();
    q.pod.gen = r.U32();
    q.exec_start = r.I64();
    q.exec_end = r.I64();
    q.exec_us = r.U32();
    q.function = static_cast<trace::FunctionId>(r.U64());
    q.seq = r.U64();
  }
  const std::vector<uint32_t> alive_invokes = RestoreSlabStructure(invokes_, r);
  for (const uint32_t i : alive_invokes) {
    PendingInvoke& q = invokes_.slot_value(i);
    q.time = r.I64();
    q.seq = r.U64();
    q.function = static_cast<trace::FunctionId>(r.U64());
    q.delay_exempt = r.U8() != 0;
  }

  const uint8_t stream_mode = r.U8();
  const std::string stream_state = r.Str();
  if (stream_mode == 2) {
    COLDSTART_CHECK(stream == nullptr);
  } else {
    COLDSTART_CHECK(stream != nullptr);
    arrival_stream_ = std::move(stream);
    if (stream_mode == 1) {
      ByteReader sr(stream_state);
      COLDSTART_CHECK(arrival_stream_->RestoreState(sr));
      COLDSTART_CHECK(sr.AtEnd());
    } else {
      // Determinism-contract fallback: a fresh stream over the same arguments
      // yields the same chunks; discard the ones the checkpointed run consumed.
      const int64_t consumed_days = (now + 1) / kDay;
      for (int64_t d = 0; d < consumed_days; ++d) {
        arrival_stream_->NextChunk(&chunk_);
      }
      chunk_.events.clear();
    }
    sim_.AttachSource(&arrival_cursor_);
    source_attached_ = true;
  }

  // --- Rebuild the pending-event queue under the original (time, seq) keys. ---
  // Push order is free here: the wheel sorts lazily before the first pop.
  for (int64_t day = 0; day < num_starters_; ++day) {
    if (day * kDay > now) {
      sim_.RestoreEvent(day * kDay, starter_seq_base_ + static_cast<uint64_t>(day),
                        [this, day] { OpenDayChunk(day); });
    }
  }
  if (policy_tick_time_ >= 0) {
    COLDSTART_CHECK(policy_ != nullptr);
    sim_.RestoreEvent(policy_tick_time_, policy_tick_seq_,
                      [this] { RunPolicyTick(); });
  }
  for (const uint32_t i : alive_pods) {
    const Pod& p = pod_slab_.slot_value(i);
    const PodHot& h = pod_hot_[i];
    if (h.ready_time > now) {
      // The load-decrement scheduled at the pod's ready time is still pending.
      sim_.RestoreEvent(
          h.ready_time, p.ready_decr_seq,
          MakeLoadDecrementHandler(StateIndex(p.region, CellOf(p.function)),
                                   spec(p.function).dep_size_kb > 0));
    }
    if (h.slots_used == 0) {
      // Exactly the current-generation keep-alive is live; earlier generations'
      // events were no-ops and are deliberately not re-queued (only the
      // non-contractual events_processed counter can tell the difference).
      COLDSTART_CHECK_GT(p.ka_time, now);
      sim_.RestoreEvent(p.ka_time, p.ka_seq,
                        MakeKeepAliveHandler(p.self, p.keepalive_gen));
    }
  }
  for (const uint32_t i : alive_inflight) {
    const InFlightRequest& q = inflight_.slot_value(i);
    COLDSTART_CHECK_GT(q.exec_end, now);
    const SlabHandle reg{i, inflight_.slot_generation(i)};
    sim_.RestoreEvent(q.exec_end, q.seq, [this, reg] { RunRequestCompletion(reg); });
  }
  for (const uint32_t i : alive_invokes) {
    const PendingInvoke& q = invokes_.slot_value(i);
    COLDSTART_CHECK_GT(q.time, now);
    const SlabHandle reg{i, invokes_.slot_generation(i)};
    sim_.RestoreEvent(q.time, q.seq, [this, reg] { RunInvoke(reg); });
  }
}

void Platform::Finalize() {
  sink_.OnHorizon(calendar_.horizon());
  // Pods alive at the end of the trace are censored at the horizon, mirroring how the
  // dataset's month boundary truncates pod lifetimes.
  std::vector<Pod*> remaining;
  remaining.reserve(pod_slab_.alive_count());
  pod_slab_.ForEachAlive([&remaining](Pod& pod) { remaining.push_back(&pod); });
  // Flush in pod-id order (slot order reflects freelist reuse, not creation).
  std::sort(remaining.begin(), remaining.end(),
            [](const Pod* a, const Pod* b) { return a->id < b->id; });
  for (Pod* pod : remaining) {
    // Censor at the horizon, but never before the pod's own activity (a request can
    // still be executing when the trace ends).
    const PodHot& h = hot(*pod);
    KillPod(pod, std::max({calendar_.horizon(), h.ready_time, h.last_busy_end}));
  }
  // Cost-ledger totals, one record per region in index order — after the pod
  // flush so censored pods are included. Shards emit their partial sums; the
  // sink-side merge is integer addition, so geometry cannot perturb a bit.
  for (size_t r = 0; r < profiles_.size(); ++r) {
    sink_.OnRegionCost(cost_ledger_.region_record(static_cast<trace::RegionId>(r)));
  }
}

}  // namespace coldstart::platform
