// The multi-region serverless platform (YuanRong-like; Fig. 2 life cycle).
//
// One Platform instance hosts all five regions: per-region resource pools, cold-start
// models (coldstart_model.h; the YuanRong pipeline by default, provider presets and
// snapshot restore via RegionProfile::model), and load state, plus per-function pod
// sets with keep-alive management and a per-region resource-cost ledger.
// Driven by a Simulator; emits the Table 1 trace streams into a TraceSink (an exact
// TraceStore, or a StreamingAggregates for O(1)-memory runs).
//
// Request path: arrival -> (optional policy admission delay for async triggers) ->
// find a pod with a free concurrency slot (warm preferred, warming accepted) ->
// otherwise cold start: draw a pod through the staged pool search, run the 4-component
// pipeline, and bind the request to the pod's ready time. Completions update
// keep-alive state and fan out workflow children.
//
// Region independence: all randomness flows through per-(region, cell) RNG
// substreams (forked from the seed by region index, then by capacity cell when
// cells_per_region > 1) and pod/request ids are drawn from per-(region, cell)
// namespaces. A platform that only ever sees one region's (or one cell group's)
// arrivals therefore emits exactly the records the full serial platform emits
// for those functions — the invariant core::Experiment's sharded runner is
// built on.
#ifndef COLDSTART_PLATFORM_PLATFORM_H_
#define COLDSTART_PLATFORM_PLATFORM_H_

#include <memory>
#include <vector>

#include "common/byte_serde.h"
#include "platform/coldstart_model.h"
#include "platform/cost_ledger.h"
#include "platform/load_state.h"
#include "platform/pod_slab.h"
#include "platform/policy_hooks.h"
#include "platform/resource_pool.h"
#include "sim/simulator.h"
#include "trace/trace_sink.h"
#include "workload/arrivals.h"
#include "workload/function_cells.h"

namespace coldstart::platform {

// A pod instance (warming or warm). Pods live in a Slab<Pod>; `self` is the
// generation-checked handle in-flight events use to re-find the pod. The three
// fields the request path touches per event — readiness, free concurrency
// slots, idle-LRU recency — live in the parallel PodHot array (SoA, indexed by
// slab slot), not here: FindPodWithSlot scans hot entries without dragging the
// cold identity/bookkeeping fields through the cache.
struct Pod {
  SlabHandle self;
  trace::PodId id = 0;
  trace::FunctionId function = 0;
  trace::RegionId region = 0;
  trace::ClusterId cluster = 0;
  trace::ResourceConfig config = trace::ResourceConfig::k300m128;
  SimTime cold_start_begin = 0;
  uint32_t cold_start_us = 0;
  uint32_t served = 0;
  uint64_t keepalive_gen = 0;
  bool prewarmed = false;
  // Accumulated warm-idle time (µs): completed idle intervals between busy
  // periods; the final idle tail is added at death. Feeds the cost ledger.
  int64_t idle_us = 0;
  // Checkpoint bookkeeping: the (time, seq) keys of this pod's pending events,
  // so a restore can re-queue them under their original total-order positions.
  // ready_decr_seq is the load-decrement event at ready_time (pending iff
  // ready_time is in the future); (ka_time, ka_seq) is the keep-alive armed for
  // keepalive_gen (live iff the pod is idle — earlier generations' events are
  // stale no-ops and are dropped on restore).
  uint64_t ready_decr_seq = 0;
  SimTime ka_time = 0;
  uint64_t ka_seq = 0;
};

// The per-pod state the arrival hot path reads and writes, split out of Pod
// into a dense slot-indexed array. slots_used counts requests bound to the
// pod, whether executing or waiting for readiness.
struct PodHot {
  SimTime ready_time = 0;
  SimTime last_busy_end = 0;
  int slots_used = 0;
};

// Pod ids carry their region in the high bits so per-region id streams never collide
// and a sharded run mints exactly the ids the serial run would have minted. With
// cells_per_region > 1 the cell index is packed directly below the region bits
// (see Platform::cell_bits_), shrinking the per-cell sequence space accordingly.
inline constexpr int kPodIdRegionShift = 28;
inline constexpr trace::PodId kPodIdSeqMask = (trace::PodId{1} << kPodIdRegionShift) - 1;

class Platform {
 public:
  struct Options {
    uint64_t seed = 1;
    bool record_requests = true;
    // Baseline keep-alive when no policy overrides it (§2.2: one minute).
    SimDuration default_keep_alive = kMinute;
    // Construction for a checkpoint restore: skip the side effects a fresh run
    // performs up front (function-table emission into the sink, the initial
    // policy-tick schedule) — the restored state already accounts for them.
    bool resuming = false;
    // Capacity cells per region (ScenarioConfig::cells_per_region). 1 keeps the
    // paper's one-pool-per-region model and the legacy RNG/id streams bit for
    // bit. Values > 1 decompose every capacity-coupled structure (pools, load
    // state, RNG substreams, pod/request id namespaces) into independent cells
    // keyed by `function_cells`, which must then be non-null and map every
    // function id to its cell (workload/function_cells.h).
    uint32_t cells_per_region = 1;
    std::shared_ptr<const std::vector<uint32_t>> function_cells;
    // Drain runs of same-timestamp arrivals through HandleArrival in one batch
    // dispatch (grouped by function, spec/state lookups hoisted per group).
    // Bit-identical to per-event dispatch — day-anchored seq reservation puts
    // every same-time arrival ahead of every same-time handler-scheduled event
    // (docs/determinism.md) — so this is purely a throughput knob; false forces
    // the per-event path (pinned equal by platform_test).
    bool batched_arrivals = true;
  };

  // `sink` receives every emitted record: a TraceStore for exact full-trace runs,
  // a StreamingAggregates for O(1)-memory streaming runs (or any custom sink).
  Platform(const workload::Population& population,
           const std::vector<workload::RegionProfile>& profiles,
           const workload::Calendar& calendar, sim::Simulator& sim,
           trace::TraceSink& sink, Options options,
           PlatformPolicy* policy = nullptr);
  // The Simulator must outlive the Platform: the destructor detaches the
  // arrival cursor from `sim` so no dangling EventSource is left behind.
  ~Platform();

  // Attaches the run's arrival stream. Takes ownership; call at most once,
  // before RunUntil. One starter event per day boundary pulls that day's chunk
  // from the stream, reserves the batch's contiguous (time, seq) keys, and opens
  // the cursor over it — so at any instant the platform holds one day of
  // arrivals, never the whole horizon, and arrivals are never materialized as
  // queued closures. The chunk sequence must honor the ArrivalStream contract
  // (day-ordered, per-day (time, function)-sorted, in-window — CHECKed here);
  // see docs/determinism.md for why the day-anchored seq reservation makes the
  // event total order identical to per-arrival scheduling.
  void AttachArrivalStream(std::unique_ptr<workload::ArrivalStream> stream);

  // Compatibility shim for callers holding an eager (time-sorted) vector:
  // wraps it in a MaterializedArrivalStream and attaches it. Same event total
  // order as streaming generation — the vector is just a pre-pulled stream.
  void InjectArrivals(std::vector<workload::ArrivalEvent> arrivals);

  // Writes function records + flushes still-alive pods; call once after the run.
  void Finalize();

  // --- Checkpoint support (src/checkpoint/). ---
  // Serializes the platform's full mutable state. Valid only at a quiescent day
  // boundary (clock at day * kDay - 1: the previous day's chunk fully drained,
  // every pending event reconstructible from the bookkeeping below) — CHECKed.
  // The payload covers RNGs, id namespaces, load/pool state, the pod slab (with
  // per-function pod-list order), the in-flight and pending-invoke registries,
  // the arrival stream (or a regenerate marker), and the event-seq bookkeeping
  // needed to rebuild the queue. Policy and sink state are serialized by the
  // caller (core::Experiment), which owns those objects.
  void SaveCheckpointState(ByteWriter& w) const;
  // Mirror of SaveCheckpointState on a freshly constructed platform (with
  // Options.resuming set). Restores state, re-queues every pending event under
  // its original (time, seq) key, and attaches `stream` — restoring its cursor
  // state when the checkpoint captured it, else fast-forwarding it by pulling
  // and discarding the consumed days. Call after sim.RestoreClock().
  void RestoreCheckpointState(ByteReader& r,
                              std::unique_ptr<workload::ArrivalStream> stream);

  // --- Policy-facing API. ---
  // Starts a pod for `function` in `region` with no triggering request. The pod's
  // cold start is not a user-visible cold start (it is counted in prewarm_spawns).
  // `initial_keep_alive` is how long the idle prewarmed pod survives awaiting traffic.
  void SpawnPrewarmedPod(trace::FunctionId function, trace::RegionId region,
                         SimDuration initial_keep_alive);
  // Capacity-coupled accessors: a single pool/load per region only exists when
  // cells_per_region == 1 (CHECKed). Policies that need them declare
  // is_function_local() == false, which pins their runs to one cell.
  ResourcePool& pool(trace::RegionId region, trace::ResourceConfig config);
  const RegionLoadState& load(trace::RegionId region) const;
  const workload::FunctionSpec& spec(trace::FunctionId function) const;
  // True when the function has a pod that is (or will be) able to take a request:
  // ready (or warming) with a free concurrency slot.
  bool HasAvailablePod(trace::FunctionId function) const;
  int alive_pod_count(trace::FunctionId function) const;
  const std::vector<workload::RegionProfile>& profiles() const { return profiles_; }
  sim::Simulator& simulator() { return sim_; }

  // --- Stats. ---
  // User-visible cold starts per region (excludes prewarm spawns).
  int64_t cold_starts(trace::RegionId region) const;
  int64_t total_cold_starts() const;
  uint64_t pods_created() const;
  // Sum over user-visible cold starts of total cold-start latency, per region (µs).
  int64_t cold_start_latency_sum_us(trace::RegionId region) const;
  // From-scratch pod creations (pool misses) across the region's pools (all cells).
  int64_t scratch_allocations(trace::RegionId region) const;
  // Region-level load counters summed over the region's cells (cells-safe,
  // unlike load()): what the experiment runner folds into per-region stats.
  int64_t prewarm_spawns(trace::RegionId region) const;
  int64_t delayed_allocations(trace::RegionId region) const;
  // Resource-cost accumulators (pod-seconds, warm-idle-seconds, snapshot MB·s,
  // from-scratch creations), per region; order-invariant integer sums so serial
  // and sharded runs agree bit for bit. Finalize() also emits the totals into
  // the sink (TraceSink::OnRegionCost).
  const ResourceCostLedger& cost_ledger() const { return cost_ledger_; }
  // The (region, cell) cold-start model instance (tests and drivers; cell 0 is
  // the only cell at the default geometry).
  const ColdStartModel& coldstart_model(trace::RegionId region, uint32_t cell) const {
    return *models_[StateIndex(region, cell)];
  }

 private:
  struct FunctionState {
    std::vector<Pod*> pods;  // Alive pods (warming or warm), any region.
  };

  // Streams the current day's chunk as a sim::EventSource. Day starters call
  // Open() with a freshly reserved seq range, so each arrival carries exactly the
  // (time, seq) key a per-arrival closure would have had — the event total order
  // (and thus every downstream RNG draw) is unchanged.
  class ArrivalCursor : public sim::EventSource {
   public:
    explicit ArrivalCursor(Platform* platform) : platform_(platform) {}
    // Opens the cursor over platform_->chunk_.events[0, count); the previous
    // chunk must be fully drained (day batches never overlap).
    void Open(size_t count, uint64_t seq_base);
    bool Head(SimTime* time, uint64_t* seq) override;
    void RunHead() override;
    // Checkpoint support: the sorted-contract guard is the cursor's only state
    // that survives a drained chunk (next_ == limit_ at every day boundary).
    SimTime last_time() const { return last_time_; }
    void RestoreGuard(SimTime last_time) { last_time_ = last_time; }
    bool drained() const { return next_ == limit_; }

   private:
    Platform* platform_;
    size_t next_ = 0;
    size_t limit_ = 0;
    uint64_t seq_base_ = 0;
    SimTime last_time_ = 0;  // Guards the sorted-arrivals stream contract.
  };

  // --- Capacity-cell plumbing. ---
  // All capacity-coupled mutable state (RNGs, pools, loads, id namespaces) is
  // stored per (region, cell), flattened as region * cells_ + cell. At the
  // default cells_ == 1 every helper degenerates to the legacy per-region
  // behavior bit for bit (cell 0, StateIndex == region).
  uint32_t CellOf(trace::FunctionId fid) const {
    return cells_ == 1 ? 0 : (*options_.function_cells)[fid];
  }
  size_t StateIndex(trace::RegionId region, uint32_t cell) const {
    return static_cast<size_t>(region) * cells_ + cell;
  }
  // The per-(region, cell) RNG substream; every draw the platform makes is
  // attributed to a cell so that sharded and serial runs consume identical
  // sequences.
  Rng& rng(trace::RegionId region, uint32_t cell) {
    return rngs_[StateIndex(region, cell)];
  }
  trace::PodId NewPodId(trace::RegionId region, uint32_t cell);
  // The pod's SoA hot entry (valid while the pod is alive in the slab).
  PodHot& hot(const Pod& pod) { return pod_hot_[pod.self.index]; }
  const PodHot& hot(const Pod& pod) const { return pod_hot_[pod.self.index]; }

  // Day-starter body: pulls day `day`'s chunk from arrival_stream_ into chunk_,
  // validates it against the stream contract, and opens the cursor over it.
  void OpenDayChunk(int64_t day);
  void HandleArrival(trace::FunctionId fid, bool delay_exempt);
  // Batched drain: dispatches `count` same-timestamp arrivals starting at
  // `events` (already (time, function)-sorted, so same-function arrivals are
  // contiguous), grouping them into per-function batches. HandleArrivalBatch is
  // the shared body: `count` arrivals of one function with the spec/state/cell
  // lookups done once. HandleArrival delegates to a batch of 1.
  void HandleArrivalRun(const workload::ArrivalEvent* events, size_t count);
  void HandleArrivalBatch(trace::FunctionId fid, size_t count, bool delay_exempt);
  // `concurrency` is the function's slot limit, hoisted by the caller so the
  // per-pod scan touches only the PodHot array.
  Pod* FindPodWithSlot(FunctionState& state, int concurrency, SimTime now) const;
  Pod* StartColdStart(const workload::FunctionSpec& spec, trace::RegionId region,
                      bool prewarmed, SimDuration extra_sched_us);
  void AssignRequest(Pod* pod, const workload::FunctionSpec& spec, SimTime arrival);
  void OnRequestComplete(SlabHandle handle, SimTime exec_start, SimTime exec_end,
                         uint32_t exec_us, const workload::FunctionSpec& spec);
  void ArmKeepAlive(Pod* pod);
  void KillPod(Pod* pod, SimTime death_time);
  trace::ClusterId PickCluster(const workload::FunctionSpec& spec,
                               const FunctionState& state, trace::RegionId region);

  // --- Checkpoint bookkeeping. ---
  // Every pending event whose closure carries payload lives in a registry so a
  // checkpoint can re-materialize it: the queued closure itself is just a
  // 16-byte (this, handle) pair. One code path — registries are always on, so
  // checkpointed and plain runs consume identical seq/RNG sequences.

  // A request bound to a pod, completion event pending at `exec_end` with `seq`.
  struct InFlightRequest {
    SlabHandle pod;
    SimTime exec_start = 0;
    SimTime exec_end = 0;
    uint32_t exec_us = 0;
    trace::FunctionId function = 0;
    uint64_t seq = 0;
  };
  // A deferred HandleArrival (workflow child fan-out or admission retry),
  // pending at `time` with `seq`.
  struct PendingInvoke {
    SimTime time = 0;
    uint64_t seq = 0;
    trace::FunctionId function = 0;
    bool delay_exempt = false;
  };

  // Platform-managed minute tick (replaces sim::SchedulePeriodic so the tick's
  // (time, seq) is recorded and restorable). Fires OnMinuteTick then reschedules
  // — same per-tick seq consumption as the Recur closure it replaced.
  void SchedulePolicyTick(SimTime t);
  void RunPolicyTick();
  void RunRequestCompletion(SlabHandle reg);
  void RunInvoke(SlabHandle reg);
  void ScheduleInvoke(SimTime t, trace::FunctionId fid, bool delay_exempt);
  sim::Simulator::Handler MakeKeepAliveHandler(SlabHandle handle, uint64_t gen);
  sim::Simulator::Handler MakeLoadDecrementHandler(size_t load_index,
                                                   bool has_deps);

  const workload::Population& population_;
  std::vector<workload::RegionProfile> profiles_;
  workload::Calendar calendar_;
  sim::Simulator& sim_;
  trace::TraceSink& sink_;
  Options options_;
  PlatformPolicy* policy_;  // Not owned; may be null.

  // One model instance per (region, cell), like pools: mutable model state is
  // cell-scoped so sub-region sharding stays bit-identical (coldstart_model.h).
  std::vector<std::unique_ptr<ColdStartModel>> models_;       // Per (region, cell).
  std::vector<std::vector<ResourcePool>> pools_;              // [StateIndex][config].
  std::vector<RegionLoadState> loads_;                        // Per (region, cell).
  std::vector<int64_t> visible_cold_starts_;                  // Per region.
  std::vector<int64_t> cold_start_latency_sum_us_;            // Per region.
  std::vector<FunctionState> states_;                         // Per function.
  std::unique_ptr<workload::ArrivalStream> arrival_stream_;   // Owned; pull-based.
  workload::ArrivalChunk chunk_;  // The one live day batch (capacity reused).
  ArrivalCursor arrival_cursor_;
  bool source_attached_ = false;
  Slab<Pod> pod_slab_;                                        // All alive pods.
  std::vector<PodHot> pod_hot_;  // SoA hot fields, indexed by slab slot.

  // Cell geometry, fixed at construction. pod_seq_bits_ is how many low bits of
  // a pod id hold the per-cell sequence number; the cell index sits directly
  // above it, below the region bits. At cells_ == 1, cell_bits_ == 0 and the
  // layout is the legacy (region << kPodIdRegionShift) | seq exactly.
  uint32_t cells_ = 1;
  uint32_t cell_bits_ = 0;
  uint32_t pod_seq_bits_ = kPodIdRegionShift;
  trace::PodId pod_seq_mask_ = kPodIdSeqMask;

  std::vector<Rng> rngs_;                 // Per (region, cell); forked from the seed.
  std::vector<trace::PodId> next_pod_seq_;      // Per (region, cell) pod-id namespace.
  std::vector<uint64_t> next_request_seq_;      // Per (region, cell) request-id namespace.

  // Checkpoint bookkeeping (see the registry comment above).
  ResourceCostLedger cost_ledger_;        // Per region; order-invariant sums.
  Slab<InFlightRequest> inflight_;        // Pending completion events.
  Slab<PendingInvoke> invokes_;           // Pending child fan-outs / retries.
  uint64_t starter_seq_base_ = 0;         // Seq of day 0's starter event.
  int64_t num_starters_ = 0;              // Day starters scheduled at attach.
  SimTime policy_tick_time_ = -1;         // Next tick's (time, seq); -1 = none.
  uint64_t policy_tick_seq_ = 0;
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_PLATFORM_H_
