// The cold-start model layer: a pluggable interface over the paper's 4-component
// pipeline (Figure 2), so the same workload can be priced on different provider
// architectures (AWS-like, GCP-like, Azure-like) or under snapshot/restore.
//
// The concrete YuanRong calibration lives in coldstart_pipeline.h (`YuanRongModel`,
// the default); provider presets and the snapshot decorator in provider_models.h.
// Model selection is part of the scenario fingerprint (workload/region_profile.h
// `ColdStartModelConfig`), and model identity plus any mutable model state is
// framed into checkpoints — see docs/determinism.md.
#ifndef COLDSTART_PLATFORM_COLDSTART_MODEL_H_
#define COLDSTART_PLATFORM_COLDSTART_MODEL_H_

#include <memory>
#include <string_view>

#include "common/byte_serde.h"
#include "platform/load_state.h"
#include "platform/resource_pool.h"
#include "workload/function_model.h"

namespace coldstart::platform {

struct ColdStartComponents {
  SimDuration pod_alloc = 0;
  SimDuration deploy_code = 0;
  SimDuration deploy_dep = 0;
  SimDuration scheduling = 0;
  int pool_stage = 1;
  bool from_scratch = false;

  SimDuration total() const { return pod_alloc + deploy_code + deploy_dep + scheduling; }
};

// One cold-start model instance exists per (region, cell): Platform constructs a
// fresh instance for every capacity cell (and every shard platform re-creates its
// own), so mutable model state is automatically cell-scoped and serial ==
// region-sharded == sub-region-sharded runs stay bit-identical — the same
// contract policies satisfy through CloneForShard.
//
// Contract (mirrors policy_hooks.h):
//  - Compute draws all randomness from the `rng` argument, in a fixed order per
//    call; no wall clock, no ambient RNG.
//  - Compute is deliberately non-const: models may mutate both the pool (through
//    Acquire) and their own state (e.g. the snapshot decorator's restore
//    counter). Stateless models stay trivially cloneable.
//  - Mutable state must round-trip through SaveModelState/RestoreModelState with
//    deterministic (sorted, bit-pattern) serialization; checkpoints frame the
//    blob per (region, cell) together with name() and refuse to restore under a
//    different model (lint:policy-hooks and lint:serde-pair watch subclasses).
class ColdStartModel {
 public:
  virtual ~ColdStartModel() = default;

  // Computes component times for one cold start of `spec` at `now`, drawing a pod
  // from `pool` (mutates pool occupancy).
  virtual ColdStartComponents Compute(const workload::FunctionSpec& spec,
                                      ResourcePool& pool, const RegionLoadState& load,
                                      SimTime now, Rng& rng) = 0;

  // Stable identity written into checkpoints and compared on restore. Must be a
  // pure function of the model's configuration (never of accumulated state).
  virtual std::string_view name() const = 0;

  // A fresh instance with identical configuration and default-initialized mutable
  // state, used to stamp out one instance per capacity cell.
  virtual std::unique_ptr<ColdStartModel> Clone() const = 0;

  // Per-pod resident memory surcharge in MB (0 for models that keep nothing
  // warm). The cost ledger integrates it over each pod's lifetime into
  // snapshot-memory MB·s.
  virtual double snapshot_memory_mb_per_pod() const { return 0.0; }

  // Serde for mutable model state only (configuration is re-created from the
  // scenario). The default empty pair is correct for stateless models.
  virtual void SaveModelState(ByteWriter& w) const { (void)w; }
  virtual void RestoreModelState(ByteReader& r) { (void)r; }
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_COLDSTART_MODEL_H_
