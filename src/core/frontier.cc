#include "core/frontier.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "analysis/pareto.h"
#include "common/atomic_file.h"
#include "common/byte_serde.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/sweep.h"

namespace coldstart::core {
namespace {

constexpr uint32_t kPointMagic = 0x43465231;  // "CFR1": frontier point, v1.

std::string PointPath(const std::string& cache_dir, uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx",
                static_cast<unsigned long long>(key));
  return cache_dir + "/frontier_" + name + ".bin";
}

// Metric payload only — name/from_cache/on_frontier are run-local.
void SavePointPayload(ByteWriter& w, uint64_t key, const FrontierPoint& p) {
  w.U32(kPointMagic);
  w.U64(key);
  w.I64(p.cold_starts);
  w.U64(p.requests);
  w.F64(p.p50_cold_start_s);
  w.F64(p.p99_cold_start_s);
  w.F64(p.pod_seconds);
  w.F64(p.warm_idle_seconds);
}

bool RestorePointPayload(ByteReader& r, uint64_t key, FrontierPoint* p) {
  if (r.U32() != kPointMagic) {
    return false;
  }
  if (r.U64() != key) {
    return false;
  }
  p->cold_starts = r.I64();
  p->requests = r.U64();
  p->p50_cold_start_s = r.F64();
  p->p99_cold_start_s = r.F64();
  p->pod_seconds = r.F64();
  p->warm_idle_seconds = r.F64();
  return r.AtEnd();
}

bool LoadCachedPoint(const std::string& cache_dir, uint64_t key,
                     FrontierPoint* p) {
  std::ifstream in(PointPath(cache_dir, key), std::ios::binary);
  if (!in.is_open()) {
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() <= sizeof(uint32_t)) {
    return false;
  }
  const size_t payload_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
  if (Crc32(bytes.data(), payload_size) != stored_crc) {
    std::fprintf(stderr, "frontier cache: CRC mismatch in %s — re-evaluating\n",
                 PointPath(cache_dir, key).c_str());
    return false;
  }
  ByteReader r(std::string_view(bytes.data(), payload_size));
  return RestorePointPayload(r, key, p);
}

void StoreCachedPoint(const std::string& cache_dir, uint64_t key,
                      const FrontierPoint& p) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  ByteWriter w;
  SavePointPayload(w, key, p);
  const uint32_t crc = Crc32(w.data().data(), w.data().size());
  AtomicFile file(PointPath(cache_dir, key));
  if (!file.ok()) {
    return;  // Cache misses are always safe; never fail the run over a cache.
  }
  file.Write(w.data().data(), w.data().size());
  file.Write(&crc, sizeof(crc));
  file.Commit();
}

}  // namespace

uint64_t FrontierPointKey(const ScenarioConfig& config,
                          const FrontierCandidate& candidate) {
  uint64_t h = HashString("frontier-point-v1");
  h = MixHash(h, config.Fingerprint());
  h = MixHash(h, HashString(candidate.name));
  h = MixHash(h, candidate.policy_fingerprint);
  return h;
}

FrontierResult RunFrontier(const ScenarioConfig& config,
                           const std::vector<FrontierCandidate>& candidates,
                           int num_threads, const std::string& cache_dir) {
  // The frontier needs only aggregates: force the O(1)-memory sink so large
  // candidate sets do not hold one full trace per sweep job. Request records
  // stay on — the streaming sink folds them away, and they feed the request
  // counts and cold-start latency histograms the points are made of.
  ScenarioConfig scenario = config;
  scenario.trace_mode = TraceMode::kStreaming;
  scenario.record_requests = true;

  FrontierResult result;
  result.points.resize(candidates.size());

  ParallelSweep sweep(num_threads);
  const int inner_threads = std::max(
      1, sweep.num_threads() / static_cast<int>(std::max<size_t>(1, candidates.size())));
  for (size_t i = 0; i < candidates.size(); ++i) {
    sweep.Add([&, i] {
      const FrontierCandidate& candidate = candidates[i];
      FrontierPoint& point = result.points[i];
      point.name = candidate.name;
      const uint64_t key = FrontierPointKey(scenario, candidate);
      if (!cache_dir.empty() && LoadCachedPoint(cache_dir, key, &point)) {
        point.from_cache = true;
        return;
      }
      std::unique_ptr<platform::PlatformPolicy> policy =
          candidate.make_policy ? candidate.make_policy() : nullptr;
      const Experiment experiment(scenario);
      const ExperimentResult run = experiment.Run(policy.get(), inner_threads);
      point.cold_starts =
          std::accumulate(run.visible_cold_starts.begin(),
                          run.visible_cold_starts.end(), int64_t{0});
      point.requests = run.streaming.Totals().requests;
      const LogHistogram hist = run.streaming.MergedColdStartHist();
      if (hist.total_count() > 0) {
        point.p50_cold_start_s = hist.Quantile(0.5);
        point.p99_cold_start_s = hist.Quantile(0.99);
      }
      const trace::RegionCostRecord cost = run.cost_ledger.TotalRecord();
      point.pod_seconds = cost.pod_seconds();
      point.warm_idle_seconds = cost.warm_idle_seconds();
      if (!cache_dir.empty()) {
        StoreCachedPoint(cache_dir, key, point);
      }
    });
  }
  sweep.Run();

  std::vector<analysis::ParetoPoint> pareto_points;
  pareto_points.reserve(result.points.size());
  for (const FrontierPoint& p : result.points) {
    pareto_points.push_back({p.cost(), p.p99_cold_start_s});
  }
  result.frontier = analysis::ParetoFrontier(pareto_points);
  for (const size_t idx : result.frontier) {
    result.points[idx].on_frontier = true;
  }
  return result;
}

std::string FrontierCsv(const FrontierResult& result) {
  TextTable t({"policy", "cold_starts", "requests", "p50_cold_start_s",
               "p99_cold_start_s", "pod_seconds", "warm_idle_seconds", "cost",
               "on_frontier"});
  for (const FrontierPoint& p : result.points) {
    t.Row()
        .Cell(p.name)
        .Cell(p.cold_starts)
        .Cell(p.requests)
        .Cell(p.p50_cold_start_s, 4)
        .Cell(p.p99_cold_start_s, 4)
        .Cell(p.pod_seconds, 1)
        .Cell(p.warm_idle_seconds, 1)
        .Cell(p.cost(), 1)
        .Cell(std::string(p.on_frontier ? "1" : "0"));
  }
  return t.RenderCsv();
}

}  // namespace coldstart::core
