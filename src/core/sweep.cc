#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/env.h"

namespace coldstart::core {

int ParallelSweep::DefaultThreads() {
  // Validated: a malformed COLDSTART_THREADS (garbage, 0, negative, overflow)
  // aborts instead of silently becoming "use hardware_concurrency".
  constexpr int64_t kMaxThreads = 4096;
  const int64_t n = ParseEnvInt("COLDSTART_THREADS", 0, 1, kMaxThreads);
  if (n > 0) {
    return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ParallelSweep::ParallelSweep(int num_threads)
    : num_threads_(num_threads > 0 ? num_threads : DefaultThreads()) {}

size_t ParallelSweep::Add(std::function<void()> job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

void ParallelSweep::Run() {
  std::vector<std::function<void()>> jobs = std::move(jobs_);
  jobs_.clear();
  if (jobs.empty()) {
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::atomic<size_t> not_run{0};
  std::atomic<size_t> suppressed{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        return;
      }
      // Fail fast: once any job has thrown, stop dispatching — the sweep is
      // going to rethrow anyway, so running the remaining jobs only burns time
      // and buries the first error under unrelated output. In-flight jobs on
      // other workers still run to completion (they are joined below).
      if (failed.load(std::memory_order_acquire)) {
        not_run.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      try {
        jobs[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) {
          first_error = std::current_exception();
        } else {
          suppressed.fetch_add(1, std::memory_order_relaxed);
        }
        failed.store(true, std::memory_order_release);
      }
    }
  };

  const size_t workers =
      std::min(jobs.size(), static_cast<size_t>(num_threads_));
  if (workers <= 1) {
    worker();  // Serial fast path: no thread spawned.
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w) {
      threads.emplace_back(worker);
    }
    worker();  // The calling thread is worker 0.
    for (auto& t : threads) {
      t.join();
    }
  }
  if (first_error != nullptr) {
    // Account for everything the first failure displaced so a partial sweep is
    // never mistaken for a complete one.
    const size_t extra = suppressed.load(std::memory_order_relaxed);
    const size_t skipped = not_run.load(std::memory_order_relaxed);
    if (extra > 0 || skipped > 0) {
      std::fprintf(stderr,
                   "sweep: failing fast after first job error (%zu further "
                   "failure%s suppressed, %zu job%s not run)\n",
                   extra, extra == 1 ? "" : "s", skipped,
                   skipped == 1 ? "" : "s");
    }
    std::rethrow_exception(first_error);
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn, int num_threads) {
  ParallelSweep sweep(num_threads);
  for (size_t i = 0; i < n; ++i) {
    sweep.Add([&fn, i] { fn(i); });
  }
  sweep.Run();
}

}  // namespace coldstart::core
