// Experiment runner: produce workload -> simulate platform -> hand back traces.
//
// Arrivals come from the scenario's WorkloadSource (synthetic generator by
// default; a ReplaySource streams a recorded trace instead — the runner treats
// both identically, including region sharding).
//
// Run() executes the full pipeline. When the scenario has several regions and the
// policy is region-local (the baseline always is), the run is sharded: one
// Simulator + Platform per shard on worker threads, with per-shard RNG substreams
// and id namespaces, merged back into a single sealed TraceStore that is
// bit-identical to the serial run. A shard is a region — or, when the scenario
// decomposes into capacity cells (ScenarioConfig::cells_per_region > 1) and the
// policy is function-local, a (region, cell group) slice: the planner splits each
// region into K = min(cells, ceil(threads / regions)) sub-region shards so runs
// with fewer regions than cores still scale (docs/determinism.md "Sub-region
// sharding"). Cross-region policies (and policies that cannot clone per-shard
// state) fall back to the serial path automatically. Thread count:
// $COLDSTART_THREADS, else hardware_concurrency; pass num_threads = 1 to force the
// serial path.
//
// Trace recording obeys config.trace_mode: kFull materializes the exact record
// tables in result.store; kStreaming folds records into result.streaming in O(1)
// trace memory (per-shard streaming aggregates merge in region order, so counters,
// integer latency sums, and histogram bucket contents are identical at any thread
// count — same determinism contract as the full-trace path). Arrivals are pulled
// from the workload source one day chunk at a time (workload/arrival_stream.h) —
// never materialized — so a kStreaming run's total memory is O(1) in the horizon:
// a year costs no more resident memory than a week (docs/architecture.md).
//
// RunCached() additionally persists the baseline (policy-free) trace — including the
// per-region platform aggregates — keyed by the scenario fingerprint, so the many
// bench binaries that analyze the same scenario simulate it only once and a cache
// hit is indistinguishable from a fresh run.
#ifndef COLDSTART_CORE_EXPERIMENT_H_
#define COLDSTART_CORE_EXPERIMENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/scenario.h"
#include "platform/platform.h"
#include "trace/streaming_aggregates.h"
#include "trace/trace_store.h"

namespace coldstart::core {

// Day-boundary checkpointing for crash-safe long runs. When passed to Run()
// (or ResumeFrom()), the runner snapshots its full state into `dir` every
// `every_n_days` completed days: a kill at any instant loses at most the work
// since the last committed checkpoint, and ResumeFrom() continues the run to a
// final trace bit-identical to the uninterrupted one. Works serial and
// sharded (one checkpoint stream per shard, merged manifest). Requires a
// checkpointable policy (SavePolicyState) when a policy is attached —
// enforced loudly up front, not at the first checkpoint.
struct CheckpointPolicy {
  int every_n_days = 1;
  std::string dir;
  // Test/driver hook, fired after each (day, shard) checkpoint family commits
  // (checkpoint file + manifest both durable). Sharded runs fire it from
  // worker threads — keep it thread-safe.
  std::function<void(int64_t day, uint32_t shard)> on_checkpoint;
  // Cooperative stop (e.g. wired to a SIGINT flag): checked at every day
  // boundary; when set, the run checkpoints, stops early, and reports the
  // boundary in ExperimentResult::interrupted_at_day.
  const std::atomic<bool>* stop = nullptr;
};

struct ExperimentResult {
  TraceMode mode = TraceMode::kFull;
  // kFull: sealed, horizon set. kStreaming: left empty — `streaming` holds the run.
  trace::TraceStore store;
  // kStreaming: per-region/per-trigger-group counters + histograms, merged across
  // shards in region order. kFull: empty (derive with trace::AggregatesFromStore).
  trace::StreamingAggregates streaming;
  workload::Population population;    // Empty when loaded from cache.
  bool from_cache = false;

  // Platform statistics, one entry per region. Restored from the cache file on
  // cache hits, so cached and fresh results are interchangeable.
  std::vector<int64_t> visible_cold_starts;
  std::vector<int64_t> prewarm_spawns;
  std::vector<int64_t> delayed_allocations;
  std::vector<int64_t> scratch_allocations;   // Pool misses.
  std::vector<int64_t> cold_start_latency_sum_us;
  // Resource-cost ledger (pod-seconds, warm-idle, snapshot MB·s, from-scratch
  // creations), merged from shards by exact integer addition — bit-identical at
  // any thread count, and restored from the cache file on cache hits.
  platform::ResourceCostLedger cost_ledger;
  // Total simulator events. Note: a sharded run processes a handful more events
  // than a serial one (per-shard day starters and policy ticks); the traces and the
  // per-region aggregates above are nevertheless identical.
  uint64_t events_processed = 0;
  double sim_wall_seconds = 0;
  // -1: the run completed (Finalize ran, the store is sealed). Otherwise the
  // day boundary where a CheckpointPolicy stop flag ended the run early; the
  // trace is partial and a checkpoint for that day was committed.
  int64_t interrupted_at_day = -1;
};

class Experiment {
 public:
  explicit Experiment(ScenarioConfig config) : config_(std::move(config)) {}

  const ScenarioConfig& config() const { return config_; }

  // Runs the scenario (optionally under a policy). Deterministic in the config:
  // serial and sharded execution produce bit-identical sealed traces, so the
  // thread count never changes results. num_threads: 0 = default
  // ($COLDSTART_THREADS, else hardware_concurrency), 1 = serial, n = cap.
  // With a CheckpointPolicy the run additionally snapshots its state at day
  // boundaries (same results — checkpointing never perturbs the simulation).
  ExperimentResult Run(platform::PlatformPolicy* policy = nullptr,
                       int num_threads = 0,
                       const CheckpointPolicy* checkpoint = nullptr) const;

  // Resumes a run from the latest committed checkpoints in `dir` and carries
  // it to completion (or to the next stop). The config and policy must match
  // the checkpointed run — fingerprint and policy checkpointability are
  // CHECKed. The execution mode follows the manifest: a sharded checkpoint
  // resumes sharded with the checkpointed shards_per_region geometry, a serial
  // one resumes serially; manifest entries outside that geometry (stale shard
  // ids from a different K, duplicates) abort loudly. num_threads is honored
  // as given — a sharded resume runs fine on one worker.
  // The completed result is bit-identical to the uninterrupted run's.
  ExperimentResult ResumeFrom(const std::string& dir,
                              platform::PlatformPolicy* policy = nullptr,
                              int num_threads = 0,
                              const CheckpointPolicy* checkpoint = nullptr) const;

  // True when Run(policy) may take the sharded path: multiple regions (or
  // cells_per_region > 1 with a function-local policy) and a policy that is
  // region-local and shard-clonable (or no policy at all).
  bool CanShard(platform::PlatformPolicy* policy) const;

  // Baseline run with trace caching under `cache_dir`. Policy runs must use Run()
  // (policies change the trace, which would poison the cache) — enforced: passing a
  // non-null policy CHECK-fails rather than silently contaminating the cache. The
  // defaulted parameter exists only to make that misuse loud. Requires
  // TraceMode::kFull (the cache persists full traces).
  ExperimentResult RunCached(const std::string& cache_dir,
                             platform::PlatformPolicy* policy = nullptr) const;

  // Default cache directory: $COLDSTART_CACHE_DIR or ./coldstart_cache.
  static std::string DefaultCacheDir();

 private:
  // `resume` (with `resume_dir`) restores each shard from its manifest entry
  // before running; null means a fresh run from day 0.
  ExperimentResult RunSerial(platform::PlatformPolicy* policy,
                             const CheckpointPolicy* checkpoint = nullptr,
                             const checkpoint::Manifest* resume = nullptr,
                             const std::string& resume_dir = std::string()) const;
  ExperimentResult RunSharded(platform::PlatformPolicy* policy, int num_threads,
                              const CheckpointPolicy* checkpoint = nullptr,
                              const checkpoint::Manifest* resume = nullptr,
                              const std::string& resume_dir = std::string()) const;

  ScenarioConfig config_;
};

// The exact workload a Run() of `config` consumes, as a pull-based day-chunked
// stream: the population plus an open ArrivalStream over it, regenerated
// deterministically from the config. This is the O(busiest-day)-memory path the
// export drivers use to write arbitrarily long arrival logs. The stream borrows
// `population`; keep the struct alive while draining it (moving the struct is
// fine — the stream points into the population's heap buffers, which moves
// preserve).
struct WorkloadStream {
  workload::Population population;
  std::unique_ptr<workload::ArrivalStream> arrivals;
};
WorkloadStream OpenWorkloadStream(const ScenarioConfig& config);

// Eager variant: the full sorted arrival vector (the concatenation of
// OpenWorkloadStream's chunks — bit-identical by the ArrivalStream contract).
// Deliberately still materialized: its callers are tests and drivers that need
// random access to the whole stream (round-trip equality asserts, rate-scaled
// comparisons) on short horizons. Costs ~16 bytes/arrival — for anything
// long-horizon or summary-only, use OpenWorkloadStream (or just Run(), which
// never materializes arrivals).
struct WorkloadSnapshot {
  workload::Population population;
  std::vector<workload::ArrivalEvent> arrivals;
};
WorkloadSnapshot SnapshotWorkload(const ScenarioConfig& config);

}  // namespace coldstart::core

#endif  // COLDSTART_CORE_EXPERIMENT_H_
