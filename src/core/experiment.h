// Experiment runner: generate workload -> simulate platform -> hand back traces.
//
// Run() executes the full pipeline. RunCached() additionally persists the baseline
// (policy-free) trace as CSV keyed by the scenario fingerprint, so the many bench
// binaries that analyze the same scenario simulate it only once.
#ifndef COLDSTART_CORE_EXPERIMENT_H_
#define COLDSTART_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/scenario.h"
#include "platform/platform.h"

namespace coldstart::core {

struct ExperimentResult {
  trace::TraceStore store;            // Sealed; horizon set.
  workload::Population population;    // Empty when loaded from cache.
  bool from_cache = false;

  // Platform statistics (zero when loaded from cache; the trace itself carries
  // everything the analyses need).
  std::vector<int64_t> visible_cold_starts;   // Per region.
  std::vector<int64_t> prewarm_spawns;        // Per region.
  std::vector<int64_t> delayed_allocations;   // Per region.
  std::vector<int64_t> scratch_allocations;   // Per region (pool misses).
  std::vector<int64_t> cold_start_latency_sum_us;  // Per region.
  uint64_t events_processed = 0;
  double sim_wall_seconds = 0;
};

class Experiment {
 public:
  explicit Experiment(ScenarioConfig config) : config_(std::move(config)) {}

  const ScenarioConfig& config() const { return config_; }

  // Runs the scenario (optionally under a policy). Deterministic in the config.
  ExperimentResult Run(platform::PlatformPolicy* policy = nullptr) const;

  // Baseline run with trace caching under `cache_dir`. Policy runs must use Run()
  // (policies change the trace, which would poison the cache).
  ExperimentResult RunCached(const std::string& cache_dir) const;

  // Default cache directory: $COLDSTART_CACHE_DIR or ./coldstart_cache.
  static std::string DefaultCacheDir();

 private:
  ScenarioConfig config_;
};

}  // namespace coldstart::core

#endif  // COLDSTART_CORE_EXPERIMENT_H_
