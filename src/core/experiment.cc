#include "core/experiment.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "trace/binary_io.h"
#include "workload/arrivals.h"

namespace coldstart::core {

ExperimentResult Experiment::Run(platform::PlatformPolicy* policy) const {
  const auto wall_start = std::chrono::steady_clock::now();

  ExperimentResult result;
  const workload::Calendar calendar = config_.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config_.ScaledProfiles();

  result.population = workload::GeneratePopulation(profiles, config_.seed);
  std::vector<workload::ArrivalEvent> arrivals =
      workload::GenerateArrivals(result.population, profiles, calendar, config_.seed);

  sim::Simulator sim;
  platform::Platform::Options options;
  options.seed = config_.seed;
  options.record_requests = config_.record_requests;
  platform::Platform platform(result.population, profiles, calendar, sim, result.store,
                              options, policy);
  platform.InjectArrivals(std::move(arrivals));
  sim.RunUntil(calendar.horizon());
  platform.Finalize();
  result.store.Seal();

  result.visible_cold_starts.reserve(profiles.size());
  result.prewarm_spawns.reserve(profiles.size());
  result.delayed_allocations.reserve(profiles.size());
  for (size_t r = 0; r < profiles.size(); ++r) {
    const auto region = static_cast<trace::RegionId>(r);
    result.visible_cold_starts.push_back(platform.cold_starts(region));
    result.prewarm_spawns.push_back(platform.load(region).prewarm_spawns);
    result.delayed_allocations.push_back(platform.load(region).delayed_allocations);
    result.scratch_allocations.push_back(platform.scratch_allocations(region));
    result.cold_start_latency_sum_us.push_back(platform.cold_start_latency_sum_us(region));
  }
  result.events_processed = sim.events_processed();
  result.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

std::string Experiment::DefaultCacheDir() {
  if (const char* env = std::getenv("COLDSTART_CACHE_DIR"); env != nullptr && *env != '\0') {
    return env;
  }
  return "coldstart_cache";
}

ExperimentResult Experiment::RunCached(const std::string& cache_dir) const {
  namespace fs = std::filesystem;
  char name[64];
  std::snprintf(name, sizeof(name), "scenario_%016" PRIx64 ".bin", config_.Fingerprint());
  const std::string path = (fs::path(cache_dir) / name).string();

  std::error_code ec;
  if (fs::exists(path, ec)) {
    ExperimentResult result;
    if (trace::ReadBinaryTrace(path, result.store)) {
      result.store.Seal();
      result.from_cache = true;
      return result;
    }
    // Corrupt or stale-format cache: fall through to a fresh run and rewrite.
  }

  ExperimentResult result = Run(nullptr);
  fs::create_directories(cache_dir, ec);
  if (!trace::WriteBinaryTrace(result.store, path)) {
    std::fprintf(stderr, "warning: failed to write trace cache at %s\n", path.c_str());
  }
  return result;
}

}  // namespace coldstart::core
