#include "core/experiment.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "core/sweep.h"
#include "trace/binary_io.h"
#include "workload/arrivals.h"

namespace coldstart::core {

namespace {

platform::Platform::Options PlatformOptions(const ScenarioConfig& config) {
  platform::Platform::Options options;
  options.seed = config.seed;
  options.record_requests = config.record_requests;
  options.default_keep_alive = config.default_keep_alive;
  return options;
}

void CollectRegionStats(const platform::Platform& platform, trace::RegionId region,
                        ExperimentResult& result) {
  result.visible_cold_starts[region] = platform.cold_starts(region);
  result.prewarm_spawns[region] = platform.load(region).prewarm_spawns;
  result.delayed_allocations[region] = platform.load(region).delayed_allocations;
  result.scratch_allocations[region] = platform.scratch_allocations(region);
  result.cold_start_latency_sum_us[region] = platform.cold_start_latency_sum_us(region);
}

void ResizeStats(ExperimentResult& result, size_t regions) {
  result.visible_cold_starts.assign(regions, 0);
  result.prewarm_spawns.assign(regions, 0);
  result.delayed_allocations.assign(regions, 0);
  result.scratch_allocations.assign(regions, 0);
  result.cold_start_latency_sum_us.assign(regions, 0);
}

}  // namespace

bool Experiment::CanShard(platform::PlatformPolicy* policy) const {
  if (config_.profiles.size() < 2) {
    return false;
  }
  if (policy == nullptr) {
    return true;
  }
  if (!policy->is_region_local()) {
    return false;
  }
  return policy->CloneForShard() != nullptr;
}

ExperimentResult Experiment::Run(platform::PlatformPolicy* policy,
                                 int num_threads) const {
  const int threads =
      num_threads > 0 ? num_threads : ParallelSweep::DefaultThreads();
  // Clonability is probed inside RunSharded (cloning is the probe), so the hot
  // path never builds a throwaway clone tree.
  if (threads > 1 && config_.profiles.size() > 1 &&
      (policy == nullptr || policy->is_region_local())) {
    return RunSharded(policy, threads);
  }
  return RunSerial(policy);
}

ExperimentResult Experiment::RunSerial(platform::PlatformPolicy* policy) const {
  const auto wall_start = std::chrono::steady_clock::now();

  ExperimentResult result;
  result.mode = config_.trace_mode;
  const workload::Calendar calendar = config_.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config_.ScaledProfiles();

  result.population = workload::GeneratePopulation(profiles, config_.seed);

  const bool streaming = config_.trace_mode == TraceMode::kStreaming;
  trace::TraceSink& sink =
      streaming ? static_cast<trace::TraceSink&>(result.streaming)
                : static_cast<trace::TraceSink&>(result.store);
  sim::Simulator sim;
  platform::Platform platform(result.population, profiles, calendar, sim, sink,
                              PlatformOptions(config_), policy);
  // Pull-based arrival generation: the platform holds one day chunk at a time,
  // so arrival memory is O(busiest day) rather than O(horizon).
  platform.AttachArrivalStream(config_.workload_source().OpenStream(
      result.population, profiles, calendar, config_.seed));
  sim.RunUntil(calendar.horizon());
  platform.Finalize();
  result.store.Seal();  // No-op in streaming mode (the store stayed empty).

  ResizeStats(result, profiles.size());
  for (size_t r = 0; r < profiles.size(); ++r) {
    CollectRegionStats(platform, static_cast<trace::RegionId>(r), result);
  }
  result.events_processed = sim.events_processed();
  result.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

ExperimentResult Experiment::RunSharded(platform::PlatformPolicy* policy,
                                        int num_threads) const {
  // Region-local policies run as one independent clone per shard (the caller's
  // instance is only the configuration prototype). A policy that cannot clone
  // falls back to the serial path — same results, one thread.
  std::vector<std::unique_ptr<platform::PlatformPolicy>> clones(
      config_.profiles.size());
  if (policy != nullptr) {
    for (auto& clone : clones) {
      clone = policy->CloneForShard();
      if (clone == nullptr) {
        return RunSerial(policy);
      }
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  ExperimentResult result;
  result.mode = config_.trace_mode;
  const bool streaming = config_.trace_mode == TraceMode::kStreaming;
  const workload::Calendar calendar = config_.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config_.ScaledProfiles();
  const size_t regions = profiles.size();

  // Workload generation is shared only through immutable inputs: every shard
  // simulates against the same population (read-only) and opens its *own*
  // region-filtered arrival stream — synthetic or replayed, the runner does not
  // care. The per-region streams partition the serial stream with relative order
  // preserved (the ArrivalStream contract), so nothing is materialized or
  // repartitioned up front: each shard pulls one day of its region's arrivals at
  // a time.
  result.population = workload::GeneratePopulation(profiles, config_.seed);

  // One shard per region: own simulator, own platform, own store. Shards share
  // only immutable inputs, so they are free of data races by construction; the
  // TSan job pins that.
  struct ShardOutcome {
    trace::TraceStore store;                  // kFull.
    trace::StreamingAggregates streaming;     // kStreaming.
    uint64_t events = 0;
  };
  std::vector<ShardOutcome> shards(regions);
  ResizeStats(result, regions);
  const ScenarioConfig& config = config_;
  const workload::Population& population = result.population;

  ParallelSweep sweep(num_threads);
  for (size_t r = 0; r < regions; ++r) {
    sweep.Add([&, r] {
      trace::TraceSink& sink =
          streaming ? static_cast<trace::TraceSink&>(shards[r].streaming)
                    : static_cast<trace::TraceSink&>(shards[r].store);
      sim::Simulator sim;
      platform::Platform platform(population, profiles, calendar, sim,
                                  sink, PlatformOptions(config),
                                  clones[r].get());
      platform.AttachArrivalStream(config.workload_source().OpenStream(
          population, profiles, calendar, config.seed,
          static_cast<trace::RegionId>(r)));
      sim.RunUntil(calendar.horizon());
      platform.Finalize();
      shards[r].events = sim.events_processed();
      CollectRegionStats(platform, static_cast<trace::RegionId>(r), result);
    });
  }
  sweep.Run();

  // Fold shard counters back into the caller's prototype so policy statistics
  // (prewarms_issued() and friends) read the same whether the run sharded or not.
  if (policy != nullptr) {
    for (const auto& clone : clones) {
      policy->AbsorbShardStats(*clone);
    }
  }

  // Deterministic merge. kFull: every shard emitted the identical function table,
  // and Seal() orders the event tables by the canonical (time, region, id) key, so
  // the merged store is byte-identical to the serial run's regardless of shard
  // scheduling. kStreaming: shard aggregates fold region-by-region in index order —
  // each region's accumulators were fed the same record sequence the serial run
  // feeds them, so the merged aggregates are identical at any thread count.
  if (streaming) {
    result.streaming = std::move(shards[0].streaming);
    for (size_t r = 1; r < regions; ++r) {
      result.streaming.MergeFrom(shards[r].streaming);
    }
  } else {
    result.store = std::move(shards[0].store);
    for (size_t r = 1; r < regions; ++r) {
      result.store.AppendFrom(std::move(shards[r].store));
    }
  }
  for (const ShardOutcome& shard : shards) {
    result.events_processed += shard.events;
  }
  result.store.Seal();

  result.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

WorkloadStream OpenWorkloadStream(const ScenarioConfig& config) {
  WorkloadStream ws;
  const workload::Calendar calendar = config.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config.ScaledProfiles();
  ws.population = workload::GeneratePopulation(profiles, config.seed);
  ws.arrivals = config.workload_source().OpenStream(ws.population, profiles,
                                                    calendar, config.seed);
  return ws;
}

WorkloadSnapshot SnapshotWorkload(const ScenarioConfig& config) {
  WorkloadStream ws = OpenWorkloadStream(config);
  WorkloadSnapshot snap;
  snap.arrivals = workload::DrainArrivalStream(*ws.arrivals);
  snap.population = std::move(ws.population);
  return snap;
}

std::string Experiment::DefaultCacheDir() {
  return ParseEnvString("COLDSTART_CACHE_DIR", "coldstart_cache");
}

ExperimentResult Experiment::RunCached(const std::string& cache_dir,
                                       platform::PlatformPolicy* policy) const {
  // Policy runs must use Run(): a policy changes the emitted trace, and caching it
  // under the baseline fingerprint would silently poison every later baseline read.
  COLDSTART_CHECK(policy == nullptr && "RunCached is baseline-only; use Run(policy)");
  // The cache persists full traces; a streaming run has no store to cache.
  COLDSTART_CHECK(config_.trace_mode == TraceMode::kFull &&
                  "RunCached requires TraceMode::kFull");
  namespace fs = std::filesystem;
  // v3 filename scheme: fingerprints now also cover the workload source, so files
  // written under the old schemes (which could not tell a replay run from a
  // synthetic one) are never picked up.
  char name[64];
  std::snprintf(name, sizeof(name), "scenario_v3_%016" PRIx64 ".bin",
                config_.Fingerprint());
  const std::string path = (fs::path(cache_dir) / name).string();

  std::error_code ec;
  if (fs::exists(path, ec)) {
    ExperimentResult result;
    trace::TraceAggregates aggregates;
    if (trace::ReadBinaryTrace(path, result.store, &aggregates) &&
        aggregates.visible_cold_starts.size() == config_.profiles.size()) {
      result.store.Seal();
      result.from_cache = true;
      result.visible_cold_starts = std::move(aggregates.visible_cold_starts);
      result.prewarm_spawns = std::move(aggregates.prewarm_spawns);
      result.delayed_allocations = std::move(aggregates.delayed_allocations);
      result.scratch_allocations = std::move(aggregates.scratch_allocations);
      result.cold_start_latency_sum_us =
          std::move(aggregates.cold_start_latency_sum_us);
      result.events_processed = aggregates.events_processed;
      return result;
    }
    // Corrupt or stale-format cache: fall through to a fresh run and rewrite.
  }

  ExperimentResult result = Run(nullptr);
  fs::create_directories(cache_dir, ec);
  trace::TraceAggregates aggregates;
  aggregates.visible_cold_starts = result.visible_cold_starts;
  aggregates.prewarm_spawns = result.prewarm_spawns;
  aggregates.delayed_allocations = result.delayed_allocations;
  aggregates.scratch_allocations = result.scratch_allocations;
  aggregates.cold_start_latency_sum_us = result.cold_start_latency_sum_us;
  aggregates.events_processed = result.events_processed;
  if (!trace::WriteBinaryTrace(result.store, path, &aggregates)) {
    std::fprintf(stderr, "warning: failed to write trace cache at %s\n", path.c_str());
  }
  return result;
}

}  // namespace coldstart::core
