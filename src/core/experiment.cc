#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/byte_serde.h"
#include "common/check.h"
#include "common/env.h"
#include "core/sweep.h"
#include "trace/binary_io.h"
#include "workload/arrivals.h"
#include "workload/function_cells.h"

namespace coldstart::core {

namespace {

platform::Platform::Options PlatformOptions(const ScenarioConfig& config) {
  platform::Platform::Options options;
  options.seed = config.seed;
  options.record_requests = config.record_requests;
  options.default_keep_alive = config.default_keep_alive;
  options.cells_per_region = std::max<uint32_t>(config.cells_per_region, 1u);
  return options;
}

// The function-to-cell map shared by every platform of a cells > 1 run (null
// otherwise). Each platform instance — serial or any shard — must see the same
// map, or pod-id/RNG namespaces would disagree across shards.
std::shared_ptr<const std::vector<uint32_t>> MakeFunctionCells(
    const ScenarioConfig& config, const workload::Population& population) {
  if (config.cells_per_region <= 1) {
    return nullptr;
  }
  return std::make_shared<const std::vector<uint32_t>>(
      workload::ComputeFunctionCells(population, config.cells_per_region));
}

// Accumulates (+=) so sub-region shards of the same region fold into one row;
// callers zero the vectors (ResizeStats) first.
void CollectRegionStats(const platform::Platform& platform, trace::RegionId region,
                        ExperimentResult& result) {
  result.visible_cold_starts[region] += platform.cold_starts(region);
  result.prewarm_spawns[region] += platform.prewarm_spawns(region);
  result.delayed_allocations[region] += platform.delayed_allocations(region);
  result.scratch_allocations[region] += platform.scratch_allocations(region);
  result.cold_start_latency_sum_us[region] += platform.cold_start_latency_sum_us(region);
}

void ResizeStats(ExperimentResult& result, size_t regions) {
  result.visible_cold_starts.assign(regions, 0);
  result.prewarm_spawns.assign(regions, 0);
  result.delayed_allocations.assign(regions, 0);
  result.scratch_allocations.assign(regions, 0);
  result.cold_start_latency_sum_us.assign(regions, 0);
  result.cost_ledger = platform::ResourceCostLedger(regions);
}

// --- Checkpoint plumbing -----------------------------------------------------

// Record tables travel as raw bytes, like trace/binary_io.cc does for the
// cache format: a checkpoint is consumed on the machine that wrote it.
template <typename Record>
void SaveTable(const std::vector<Record>& table, ByteWriter& w) {
  w.U64(table.size());
  if (!table.empty()) {
    w.Raw(table.data(), table.size() * sizeof(Record));
  }
}

template <typename Record>
std::vector<Record> RestoreTable(ByteReader& r) {
  std::vector<Record> table(r.U64());
  if (!table.empty()) {
    r.Raw(table.data(), table.size() * sizeof(Record));
  }
  return table;
}

void SaveSinkState(bool streaming, const trace::TraceStore& store,
                   const trace::StreamingAggregates& aggregates, ByteWriter& w) {
  if (streaming) {
    aggregates.SaveState(w);
    return;
  }
  SaveTable(store.requests(), w);
  SaveTable(store.cold_starts(), w);
  SaveTable(store.functions(), w);
  SaveTable(store.pods(), w);
  w.I64(store.horizon());
}

void RestoreSinkState(bool streaming, trace::TraceStore& store,
                      trace::StreamingAggregates& aggregates, ByteReader& r) {
  if (streaming) {
    aggregates.RestoreState(r);
    return;
  }
  auto requests = RestoreTable<trace::RequestRecord>(r);
  auto cold_starts = RestoreTable<trace::ColdStartRecord>(r);
  auto functions = RestoreTable<trace::FunctionRecord>(r);
  auto pods = RestoreTable<trace::PodLifetimeRecord>(r);
  const SimTime horizon = r.I64();
  store.RestoreTables(std::move(requests), std::move(cold_starts),
                      std::move(functions), std::move(pods), horizon);
}

// One shard's full state, in the order RestoreShard consumes it: simulator
// clock/counters, policy blob, sink state, platform state.
std::string BuildCheckpointPayload(const sim::Simulator& sim,
                                   const platform::PlatformPolicy* policy,
                                   bool streaming, const trace::TraceStore& store,
                                   const trace::StreamingAggregates& aggregates,
                                   const platform::Platform& platform) {
  ByteWriter w;
  w.I64(sim.now());
  w.U64(sim.next_seq());
  w.U64(sim.events_processed());
  if (policy != nullptr) {
    std::string blob;
    COLDSTART_CHECK(policy->SavePolicyState(&blob) &&
                    "policy is not checkpointable (SavePolicyState returned false)");
    w.U8(1);
    w.Str(blob);
  } else {
    w.U8(0);
  }
  SaveSinkState(streaming, store, aggregates, w);
  platform.SaveCheckpointState(w);
  return w.Take();
}

// Restores one shard from its committed checkpoint file and returns the
// completed-day count. The platform must be freshly constructed with
// Options.resuming and the simulator untouched.
int64_t RestoreShard(const std::string& dir, const checkpoint::ManifestEntry& entry,
                     uint64_t fingerprint, uint8_t trace_mode, uint32_t num_regions,
                     uint32_t shard, sim::Simulator& sim,
                     platform::PlatformPolicy* policy, bool streaming,
                     trace::TraceStore& store,
                     trace::StreamingAggregates& aggregates,
                     platform::Platform& platform,
                     std::unique_ptr<workload::ArrivalStream> stream) {
  checkpoint::CheckpointMeta meta;
  std::string payload;
  const std::string path = dir + "/" + entry.file;
  COLDSTART_CHECK(checkpoint::ReadCheckpointFile(path, &meta, &payload) &&
                  "manifest names a checkpoint file that does not exist");
  COLDSTART_CHECK_EQ(meta.fingerprint, fingerprint);
  COLDSTART_CHECK_EQ(meta.trace_mode, trace_mode);
  COLDSTART_CHECK_EQ(meta.shard, shard);
  COLDSTART_CHECK_EQ(meta.day, entry.day);
  COLDSTART_CHECK_EQ(meta.num_regions, num_regions);
  ByteReader r(payload);
  const SimTime now = r.I64();
  const uint64_t next_seq = r.U64();
  const uint64_t events = r.U64();
  sim.RestoreClock(now, next_seq, events);
  if (r.U8() != 0) {
    COLDSTART_CHECK(policy != nullptr &&
                    "checkpoint carries policy state but no policy was passed");
    COLDSTART_CHECK(policy->RestorePolicyState(r.Str()));
  } else {
    COLDSTART_CHECK(policy == nullptr &&
                    "checkpoint has no policy state but a policy was passed");
  }
  RestoreSinkState(streaming, store, aggregates, r);
  platform.RestoreCheckpointState(r, std::move(stream));
  COLDSTART_CHECK(r.AtEnd());
  return meta.day;
}

// Serializes manifest updates across shard threads: each Commit writes the
// shard's checkpoint file, installs its manifest entry, and atomically
// rewrites the manifest — so the manifest always names fully committed files.
class CheckpointCommitter {
 public:
  CheckpointCommitter(const CheckpointPolicy& policy, uint64_t fingerprint,
                      uint8_t trace_mode, uint32_t num_regions, bool sharded,
                      uint32_t shards_per_region)
      : policy_(policy) {
    manifest_.fingerprint = fingerprint;
    manifest_.trace_mode = trace_mode;
    manifest_.num_regions = num_regions;
    manifest_.sharded = sharded;
    manifest_.shards_per_region = shards_per_region;
    std::error_code ec;
    std::filesystem::create_directories(policy.dir, ec);
  }

  // Carries forward the entries of the manifest the run resumed from, so a
  // shard that has not checkpointed again yet keeps its old entry.
  void SeedFrom(const checkpoint::Manifest& manifest) {
    manifest_.entries = manifest.entries;
  }

  void Commit(int64_t day, uint32_t shard, const std::string& payload) {
    checkpoint::CheckpointMeta meta;
    meta.fingerprint = manifest_.fingerprint;
    meta.trace_mode = manifest_.trace_mode;
    meta.shard = shard;
    meta.day = day;
    meta.num_regions = manifest_.num_regions;
    const std::string file = checkpoint::CheckpointFileName(day, shard);
    COLDSTART_CHECK(
        checkpoint::WriteCheckpointFile(policy_.dir + "/" + file, meta, payload) &&
        "failed to write checkpoint file");
    {
      std::lock_guard<std::mutex> lock(mu_);
      bool found = false;
      for (checkpoint::ManifestEntry& e : manifest_.entries) {
        if (e.shard == shard) {
          e.day = day;
          e.file = file;
          found = true;
          break;
        }
      }
      if (!found) {
        manifest_.entries.push_back({shard, day, file});
      }
      COLDSTART_CHECK(checkpoint::WriteManifest(policy_.dir, manifest_) &&
                      "failed to write checkpoint manifest");
    }
    if (policy_.on_checkpoint) {
      policy_.on_checkpoint(day, shard);
    }
  }

 private:
  const CheckpointPolicy& policy_;
  checkpoint::Manifest manifest_;
  std::mutex mu_;
};

// Runs one shard from its start day to the horizon. With a CheckpointPolicy,
// execution is split at day boundaries — provably equivalent to one long
// RunUntil (docs/determinism.md "Checkpoint contract") — and `commit` fires at
// the configured cadence. Returns -1 on completion (Finalize ran), else the
// boundary where the stop flag ended the run (a checkpoint was committed).
int64_t RunShardDays(sim::Simulator& sim, platform::Platform& platform,
                     SimTime horizon, int64_t start_day,
                     const CheckpointPolicy* checkpoint,
                     const std::function<void(int64_t)>& commit) {
  if (checkpoint != nullptr) {
    const int every = checkpoint->every_n_days > 0 ? checkpoint->every_n_days : 1;
    for (int64_t day = start_day + 1; day * kDay < horizon; ++day) {
      sim.RunUntil(day * kDay - 1);
      const bool stop = checkpoint->stop != nullptr &&
                        checkpoint->stop->load(std::memory_order_relaxed);
      if (stop || day % every == 0) {
        commit(day);
      }
      if (stop) {
        return day;
      }
    }
  }
  sim.RunUntil(horizon);
  platform.Finalize();
  return -1;
}

const checkpoint::ManifestEntry* FindEntry(const checkpoint::Manifest* manifest,
                                           uint32_t shard) {
  if (manifest == nullptr) {
    return nullptr;
  }
  for (const checkpoint::ManifestEntry& e : manifest->entries) {
    if (e.shard == shard) {
      return &e;
    }
  }
  return nullptr;
}

// Entries are matched by linear (shard, day) scan, so a stale entry — written
// under a different shard geometry, or duplicated by a corrupt merge — would
// silently restore the wrong state slice. Reject the whole manifest loudly
// instead: every entry must name a shard inside the run's regions × K id
// space (or kSerialShard for a serial manifest), exactly once.
void ValidateManifestEntries(const checkpoint::Manifest& manifest,
                             size_t num_regions) {
  const uint64_t limit =
      static_cast<uint64_t>(num_regions) * manifest.shards_per_region;
  std::vector<uint32_t> seen;
  seen.reserve(manifest.entries.size());
  for (const checkpoint::ManifestEntry& e : manifest.entries) {
    if (manifest.sharded) {
      COLDSTART_CHECK(e.shard < limit &&
                      "manifest entry names a shard outside regions x "
                      "shards_per_region (stale entry from a different K?)");
    } else {
      COLDSTART_CHECK(e.shard == checkpoint::kSerialShard &&
                      "serial manifest carries a sharded entry");
    }
    COLDSTART_CHECK(std::find(seen.begin(), seen.end(), e.shard) == seen.end() &&
                    "manifest lists the same shard twice");
    seen.push_back(e.shard);
  }
}

}  // namespace

bool Experiment::CanShard(platform::PlatformPolicy* policy) const {
  const bool multi_region = config_.profiles.size() >= 2;
  const bool multi_cell = config_.cells_per_region > 1;
  if (!multi_region && !multi_cell) {
    return false;
  }
  if (policy == nullptr) {
    return true;
  }
  if (!policy->is_region_local()) {
    return false;
  }
  // A single-region scenario can only shard along the cell axis, which further
  // requires the policy to be function-local (no region-wide coupled state).
  if (!multi_region && !policy->is_function_local()) {
    return false;
  }
  return policy->CloneForShard() != nullptr;
}

ExperimentResult Experiment::Run(platform::PlatformPolicy* policy,
                                 int num_threads,
                                 const CheckpointPolicy* checkpoint) const {
  const int threads =
      num_threads > 0 ? num_threads : ParallelSweep::DefaultThreads();
  // Clonability is probed inside RunSharded (cloning is the probe), so the hot
  // path never builds a throwaway clone tree.
  const bool region_shardable = config_.profiles.size() > 1 &&
                                (policy == nullptr || policy->is_region_local());
  const bool cell_shardable =
      config_.cells_per_region > 1 &&
      (policy == nullptr ||
       (policy->is_region_local() && policy->is_function_local()));
  if (threads > 1 && (region_shardable || cell_shardable)) {
    return RunSharded(policy, threads, checkpoint);
  }
  return RunSerial(policy, checkpoint);
}

ExperimentResult Experiment::ResumeFrom(const std::string& dir,
                                        platform::PlatformPolicy* policy,
                                        int num_threads,
                                        const CheckpointPolicy* checkpoint) const {
  checkpoint::Manifest manifest;
  COLDSTART_CHECK(checkpoint::ReadManifest(dir, &manifest) &&
                  "no checkpoint manifest in the resume directory");
  // The resumed run must be the checkpointed run: same fingerprint (config,
  // workload, trace mode) and region count. Anything else diverges silently.
  COLDSTART_CHECK_EQ(manifest.fingerprint, config_.Fingerprint());
  COLDSTART_CHECK_EQ(manifest.trace_mode,
                     static_cast<uint8_t>(config_.trace_mode));
  COLDSTART_CHECK_EQ(manifest.num_regions, config_.profiles.size());
  COLDSTART_CHECK_GE(manifest.shards_per_region, 1u);
  COLDSTART_CHECK_LE(manifest.shards_per_region,
                     std::max<uint32_t>(config_.cells_per_region, 1u));
  ValidateManifestEntries(manifest, config_.profiles.size());
  if (manifest.sharded) {
    COLDSTART_CHECK(CanShard(policy) &&
                    "sharded checkpoint requires a shardable config and policy");
    // Honor the caller's thread count as-is: the shard loop runs correctly on
    // one worker (shards execute sequentially), so an explicit num_threads=1
    // must not be silently promoted to 2.
    const int threads =
        num_threads > 0 ? num_threads : ParallelSweep::DefaultThreads();
    return RunSharded(policy, threads, checkpoint, &manifest, dir);
  }
  return RunSerial(policy, checkpoint, &manifest, dir);
}

ExperimentResult Experiment::RunSerial(platform::PlatformPolicy* policy,
                                       const CheckpointPolicy* checkpoint,
                                       const checkpoint::Manifest* resume,
                                       const std::string& resume_dir) const {
  // LINT-ALLOW(wall-clock): diagnostics-only wall timing for sim_wall_seconds; never reaches traces or aggregates
  const auto wall_start = std::chrono::steady_clock::now();

  ExperimentResult result;
  result.mode = config_.trace_mode;
  const workload::Calendar calendar = config_.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config_.ScaledProfiles();

  result.population = workload::GeneratePopulation(profiles, config_.seed);

  const bool streaming = config_.trace_mode == TraceMode::kStreaming;
  trace::TraceSink& sink =
      streaming ? static_cast<trace::TraceSink&>(result.streaming)
                : static_cast<trace::TraceSink&>(result.store);

  const checkpoint::ManifestEntry* entry = nullptr;
  if (resume != nullptr) {
    COLDSTART_CHECK(!resume->sharded &&
                    "sharded checkpoint routed to the serial runner");
    entry = FindEntry(resume, checkpoint::kSerialShard);
    COLDSTART_CHECK(entry != nullptr && "serial manifest has no entry");
  }

  platform::Platform::Options options = PlatformOptions(config_);
  options.function_cells = MakeFunctionCells(config_, result.population);
  options.resuming = entry != nullptr;
  sim::Simulator sim;
  platform::Platform platform(result.population, profiles, calendar, sim, sink,
                              options, policy);
  // Pull-based arrival generation: the platform holds one day chunk at a time,
  // so arrival memory is O(busiest day) rather than O(horizon).
  auto stream = config_.workload_source().OpenStream(result.population, profiles,
                                                     calendar, config_.seed);
  int64_t start_day = 0;
  if (entry != nullptr) {
    start_day = RestoreShard(resume_dir, *entry, config_.Fingerprint(),
                             static_cast<uint8_t>(config_.trace_mode),
                             static_cast<uint32_t>(profiles.size()),
                             checkpoint::kSerialShard, sim, policy, streaming,
                             result.store, result.streaming, platform,
                             std::move(stream));
  } else {
    platform.AttachArrivalStream(std::move(stream));
  }

  std::optional<CheckpointCommitter> committer;
  std::function<void(int64_t)> commit;
  if (checkpoint != nullptr) {
    COLDSTART_CHECK(!checkpoint->dir.empty());
    if (policy != nullptr) {
      // Fail at attach time, not at the first day boundary hours in.
      std::string probe;
      COLDSTART_CHECK(policy->SavePolicyState(&probe) &&
                      "policy is not checkpointable (SavePolicyState)");
    }
    committer.emplace(*checkpoint, config_.Fingerprint(),
                      static_cast<uint8_t>(config_.trace_mode),
                      static_cast<uint32_t>(profiles.size()), /*sharded=*/false,
                      /*shards_per_region=*/1);
    if (resume != nullptr) {
      committer->SeedFrom(*resume);
    }
    commit = [&](int64_t day) {
      committer->Commit(day, checkpoint::kSerialShard,
                        BuildCheckpointPayload(sim, policy, streaming,
                                               result.store, result.streaming,
                                               platform));
    };
  }

  result.interrupted_at_day =
      RunShardDays(sim, platform, calendar.horizon(), start_day, checkpoint, commit);
  if (result.interrupted_at_day < 0) {
    result.store.Seal();  // No-op in streaming mode (the store stayed empty).
  }

  ResizeStats(result, profiles.size());
  for (size_t r = 0; r < profiles.size(); ++r) {
    CollectRegionStats(platform, static_cast<trace::RegionId>(r), result);
  }
  result.cost_ledger.MergeFrom(platform.cost_ledger());
  result.events_processed = sim.events_processed();
  result.sim_wall_seconds =
      // LINT-ALLOW(wall-clock): diagnostics-only wall timing for sim_wall_seconds; never reaches traces or aggregates
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

ExperimentResult Experiment::RunSharded(platform::PlatformPolicy* policy,
                                        int num_threads,
                                        const CheckpointPolicy* checkpoint,
                                        const checkpoint::Manifest* resume,
                                        const std::string& resume_dir) const {
  const size_t regions = config_.profiles.size();
  const uint32_t cells = std::max<uint32_t>(config_.cells_per_region, 1u);

  // Shard planner. A shard is (region, contiguous cell group); its id is
  // region * K + group. K == 1 is plain region sharding — the only geometry
  // available to capacity-coupled policies, since splitting a region's cells
  // also splits its pools and load state. K > 1 (sub-region sharding) engages
  // only when the scenario decomposes (cells > 1) and the policy never reads
  // region-coupled state (is_function_local), and sizes itself to the thread
  // budget: just enough groups per region to keep num_threads workers busy.
  // A resume adopts the checkpointed geometry verbatim — shard ids must line
  // up with the manifest entries.
  uint32_t k = 1;
  if (resume != nullptr) {
    k = resume->shards_per_region;
  } else if (cells > 1 && (policy == nullptr || policy->is_function_local())) {
    const uint32_t want = static_cast<uint32_t>(
        (static_cast<size_t>(num_threads) + regions - 1) / regions);
    k = std::min(cells, std::max<uint32_t>(want, 1u));
  }
  if (k > 1) {
    COLDSTART_CHECK((policy == nullptr || policy->is_function_local()) &&
                    "sub-region (K > 1) geometry with a policy that reads "
                    "region-coupled state");
  }
  const size_t num_shards = regions * k;

  // Region-local policies run as one independent clone per shard (the caller's
  // instance is only the configuration prototype). A policy that cannot clone
  // falls back to the serial path — same results, one thread. (A resume never
  // falls back: ResumeFrom checked CanShard before routing here.)
  std::vector<std::unique_ptr<platform::PlatformPolicy>> clones(num_shards);
  if (policy != nullptr) {
    for (auto& clone : clones) {
      clone = policy->CloneForShard();
      if (clone == nullptr) {
        COLDSTART_CHECK(resume == nullptr);
        return RunSerial(policy, checkpoint);
      }
    }
  }

  // LINT-ALLOW(wall-clock): diagnostics-only wall timing for sim_wall_seconds; never reaches traces or aggregates
  const auto wall_start = std::chrono::steady_clock::now();

  ExperimentResult result;
  result.mode = config_.trace_mode;
  const bool streaming = config_.trace_mode == TraceMode::kStreaming;
  const workload::Calendar calendar = config_.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config_.ScaledProfiles();
  COLDSTART_CHECK_EQ(profiles.size(), regions);

  // Workload generation is shared only through immutable inputs: every shard
  // simulates against the same population (read-only) and opens its *own*
  // filtered arrival stream — synthetic or replayed, the runner does not care.
  // The per-shard streams partition the serial stream with relative order
  // preserved (the ArrivalStream contract), so nothing is materialized or
  // repartitioned up front: each shard pulls one day of its slice's arrivals at
  // a time.
  result.population = workload::GeneratePopulation(profiles, config_.seed);
  const std::shared_ptr<const std::vector<uint32_t>> function_cells =
      MakeFunctionCells(config_, result.population);

  // One shard per (region, cell group): own simulator, own platform, own store.
  // Shards share only immutable inputs, so they are free of data races by
  // construction; the TSan job pins that. Region stat rows are written by up to
  // K shards, so each shard banks its own scalars here and the fold below runs
  // after the sweep joins.
  struct ShardOutcome {
    trace::TraceStore store;                  // kFull.
    trace::StreamingAggregates streaming;     // kStreaming.
    uint64_t events = 0;
    int64_t visible_cold_starts = 0;
    int64_t prewarm_spawns = 0;
    int64_t delayed_allocations = 0;
    int64_t scratch_allocations = 0;
    int64_t cold_start_latency_sum_us = 0;
    platform::ResourceCostLedger cost_ledger;
  };
  std::vector<ShardOutcome> shards(num_shards);
  ResizeStats(result, regions);
  const ScenarioConfig& config = config_;
  const workload::Population& population = result.population;
  const uint64_t fingerprint = config_.Fingerprint();

  if (resume != nullptr) {
    COLDSTART_CHECK(resume->sharded &&
                    "serial checkpoint routed to the sharded runner");
  }
  std::optional<CheckpointCommitter> committer;
  if (checkpoint != nullptr) {
    COLDSTART_CHECK(!checkpoint->dir.empty());
    if (policy != nullptr) {
      std::string probe;
      COLDSTART_CHECK(policy->SavePolicyState(&probe) &&
                      "policy is not checkpointable (SavePolicyState)");
    }
    committer.emplace(*checkpoint, fingerprint,
                      static_cast<uint8_t>(config_.trace_mode),
                      static_cast<uint32_t>(regions), /*sharded=*/true, k);
    if (resume != nullptr) {
      committer->SeedFrom(*resume);
    }
  }
  // One stop day per shard; -1 = ran to completion. The stop flag is global,
  // but shards notice it at their own next day boundary, so an interrupted
  // sharded run's shards may rest at different days — each shard's manifest
  // entry records its own.
  std::vector<int64_t> stop_days(num_shards, -1);

  ParallelSweep sweep(num_threads);
  for (size_t s = 0; s < num_shards; ++s) {
    sweep.Add([&, s] {
      const trace::RegionId region = static_cast<trace::RegionId>(s / k);
      const uint32_t group = static_cast<uint32_t>(s % k);
      trace::TraceSink& sink =
          streaming ? static_cast<trace::TraceSink&>(shards[s].streaming)
                    : static_cast<trace::TraceSink&>(shards[s].store);
      const checkpoint::ManifestEntry* entry =
          FindEntry(resume, static_cast<uint32_t>(s));
      platform::Platform::Options options = PlatformOptions(config);
      options.function_cells = function_cells;
      options.resuming = entry != nullptr;
      sim::Simulator sim;
      platform::Platform platform(population, profiles, calendar, sim,
                                  sink, options, clones[s].get());
      // K == 1: region filter only, the legacy per-region partition. K > 1:
      // the region's cells split into K contiguous groups — group g simulates
      // cells [g * cells / K, (g + 1) * cells / K).
      std::optional<workload::CellSlice> slice;
      if (k > 1) {
        slice = workload::CellSlice{function_cells,
                                    static_cast<uint32_t>(group * cells / k),
                                    static_cast<uint32_t>((group + 1) * cells / k)};
      }
      auto stream = config.workload_source().OpenStream(
          population, profiles, calendar, config.seed, region, slice);
      int64_t start_day = 0;
      if (entry != nullptr) {
        start_day = RestoreShard(resume_dir, *entry, fingerprint,
                                 static_cast<uint8_t>(config.trace_mode),
                                 static_cast<uint32_t>(regions),
                                 static_cast<uint32_t>(s), sim, clones[s].get(),
                                 streaming, shards[s].store, shards[s].streaming,
                                 platform, std::move(stream));
      } else {
        platform.AttachArrivalStream(std::move(stream));
      }
      std::function<void(int64_t)> commit;
      if (checkpoint != nullptr) {
        commit = [&, s](int64_t day) {
          committer->Commit(day, static_cast<uint32_t>(s),
                            BuildCheckpointPayload(sim, clones[s].get(),
                                                   streaming, shards[s].store,
                                                   shards[s].streaming, platform));
        };
      }
      stop_days[s] = RunShardDays(sim, platform, calendar.horizon(), start_day,
                                  checkpoint, commit);
      shards[s].events = sim.events_processed();
      // This shard's platform only ever saw its own cell group's arrivals, so
      // its region row holds exactly this shard's contribution.
      shards[s].visible_cold_starts = platform.cold_starts(region);
      shards[s].prewarm_spawns = platform.prewarm_spawns(region);
      shards[s].delayed_allocations = platform.delayed_allocations(region);
      shards[s].scratch_allocations = platform.scratch_allocations(region);
      shards[s].cold_start_latency_sum_us =
          platform.cold_start_latency_sum_us(region);
      shards[s].cost_ledger = platform.cost_ledger();
    });
  }
  sweep.Run();
  for (const int64_t d : stop_days) {
    result.interrupted_at_day = std::max(result.interrupted_at_day, d);
  }

  // Fold shard counters back into the caller's prototype so policy statistics
  // (prewarms_issued() and friends) read the same whether the run sharded or not.
  if (policy != nullptr) {
    for (const auto& clone : clones) {
      policy->AbsorbShardStats(*clone);
    }
  }

  // Deterministic merge. kFull: every shard emitted the identical function table,
  // and Seal() orders the event tables by the canonical (time, region, id) key, so
  // the merged store is byte-identical to the serial run's regardless of shard
  // scheduling or geometry. kStreaming: shard aggregates fold in shard-id order;
  // every accumulator is a sum, count, max, or fixed-point total — associative
  // and commutative — so any partition of the serial record sequence merges to
  // the identical aggregates at any thread count and any K.
  if (streaming) {
    result.streaming = std::move(shards[0].streaming);
    for (size_t s = 1; s < num_shards; ++s) {
      result.streaming.MergeFrom(shards[s].streaming);
    }
  } else {
    result.store = std::move(shards[0].store);
    for (size_t s = 1; s < num_shards; ++s) {
      result.store.AppendFrom(std::move(shards[s].store));
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t region = s / k;
    result.events_processed += shards[s].events;
    result.visible_cold_starts[region] += shards[s].visible_cold_starts;
    result.prewarm_spawns[region] += shards[s].prewarm_spawns;
    result.delayed_allocations[region] += shards[s].delayed_allocations;
    result.scratch_allocations[region] += shards[s].scratch_allocations;
    result.cold_start_latency_sum_us[region] += shards[s].cold_start_latency_sum_us;
    // Integer (and 128-bit fixed-point) adds: fold order cannot change the sums,
    // so the merged ledger matches the serial run bit for bit.
    result.cost_ledger.MergeFrom(shards[s].cost_ledger);
  }
  if (result.interrupted_at_day < 0) {
    result.store.Seal();
  }

  result.sim_wall_seconds =
      // LINT-ALLOW(wall-clock): diagnostics-only wall timing for sim_wall_seconds; never reaches traces or aggregates
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

WorkloadStream OpenWorkloadStream(const ScenarioConfig& config) {
  WorkloadStream ws;
  const workload::Calendar calendar = config.MakeCalendar();
  const std::vector<workload::RegionProfile> profiles = config.ScaledProfiles();
  ws.population = workload::GeneratePopulation(profiles, config.seed);
  ws.arrivals = config.workload_source().OpenStream(ws.population, profiles,
                                                    calendar, config.seed);
  return ws;
}

WorkloadSnapshot SnapshotWorkload(const ScenarioConfig& config) {
  WorkloadStream ws = OpenWorkloadStream(config);
  WorkloadSnapshot snap;
  snap.arrivals = workload::DrainArrivalStream(*ws.arrivals);
  snap.population = std::move(ws.population);
  return snap;
}

std::string Experiment::DefaultCacheDir() {
  return ParseEnvString("COLDSTART_CACHE_DIR", "coldstart_cache");
}

ExperimentResult Experiment::RunCached(const std::string& cache_dir,
                                       platform::PlatformPolicy* policy) const {
  // Policy runs must use Run(): a policy changes the emitted trace, and caching it
  // under the baseline fingerprint would silently poison every later baseline read.
  COLDSTART_CHECK(policy == nullptr && "RunCached is baseline-only; use Run(policy)");
  // The cache persists full traces; a streaming run has no store to cache.
  COLDSTART_CHECK(config_.trace_mode == TraceMode::kFull &&
                  "RunCached requires TraceMode::kFull");
  namespace fs = std::filesystem;
  // v6 filename scheme, bumped with the fingerprint salt: v6 folds the
  // per-profile cold-start model selection into the fingerprint and persists
  // the resource-cost ledger, so files written under the older schemes are
  // never picked up.
  char name[64];
  std::snprintf(name, sizeof(name), "scenario_v6_%016" PRIx64 ".bin",
                config_.Fingerprint());
  const std::string path = (fs::path(cache_dir) / name).string();

  std::error_code ec;
  if (fs::exists(path, ec)) {
    ExperimentResult result;
    trace::TraceAggregates aggregates;
    if (trace::ReadBinaryTrace(path, result.store, &aggregates) &&
        aggregates.visible_cold_starts.size() == config_.profiles.size()) {
      result.store.Seal();
      result.from_cache = true;
      result.visible_cold_starts = std::move(aggregates.visible_cold_starts);
      result.prewarm_spawns = std::move(aggregates.prewarm_spawns);
      result.delayed_allocations = std::move(aggregates.delayed_allocations);
      result.scratch_allocations = std::move(aggregates.scratch_allocations);
      result.cold_start_latency_sum_us =
          std::move(aggregates.cold_start_latency_sum_us);
      result.events_processed = aggregates.events_processed;
      if (!aggregates.cost_ledger.empty()) {
        ByteReader cost(aggregates.cost_ledger);
        result.cost_ledger.RestoreState(cost);
        COLDSTART_CHECK(cost.AtEnd());
      }
      return result;
    }
    // Corrupt or stale-format cache: fall through to a fresh run and rewrite.
  }

  ExperimentResult result = Run(nullptr);
  fs::create_directories(cache_dir, ec);
  trace::TraceAggregates aggregates;
  aggregates.visible_cold_starts = result.visible_cold_starts;
  aggregates.prewarm_spawns = result.prewarm_spawns;
  aggregates.delayed_allocations = result.delayed_allocations;
  aggregates.scratch_allocations = result.scratch_allocations;
  aggregates.cold_start_latency_sum_us = result.cold_start_latency_sum_us;
  aggregates.events_processed = result.events_processed;
  {
    ByteWriter cost;
    result.cost_ledger.SaveState(cost);
    aggregates.cost_ledger = cost.Take();
  }
  if (!trace::WriteBinaryTrace(result.store, path, &aggregates)) {
    std::fprintf(stderr, "warning: failed to write trace cache at %s\n", path.c_str());
  }
  return result;
}

}  // namespace coldstart::core
