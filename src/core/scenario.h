// Scenario configuration: everything that defines one reproducible experiment.
#ifndef COLDSTART_CORE_SCENARIO_H_
#define COLDSTART_CORE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "workload/calendar.h"
#include "workload/region_profile.h"
#include "workload/workload_source.h"

namespace coldstart::core {

// How a run records its trace. kFull materializes every record in a TraceStore
// (memory grows with trace length; required by the post-hoc figure analyses).
// kStreaming folds records into StreamingAggregates on the fly — trace memory is
// O(1) in the trace length, the only mode that fits month/year-scale runs in RAM.
// (Arrival generation is day-chunked in both modes — workload/arrival_stream.h —
// so a streaming run's total memory no longer has any linear-in-days term; see
// docs/architecture.md for the memory model.)
enum class TraceMode : uint8_t { kFull = 0, kStreaming };

struct ScenarioConfig {
  uint64_t seed = 42;
  int days = 31;       // Trace length; the paper's dataset covers 31 days.
  double scale = 1.0;  // Scales function counts and pool sizes (for quick runs).
  bool record_requests = true;
  // Trace recording mode. It changes what is retained, never what the platform
  // emits — but it *is* part of Fingerprint(): checkpoints carry the sink's
  // partial state, so a checkpoint written in one mode cannot resume the other.
  // RunCached() requires kFull.
  TraceMode trace_mode = TraceMode::kFull;
  // Baseline keep-alive granted to idle pods when no policy overrides it (§2.2).
  SimDuration default_keep_alive = kMinute;
  // Capacity cells per region. 1 (the default) is the paper's model: one shared
  // resource pool / load state / RNG stream per region. Values > 1 decompose
  // every capacity-coupled mutable structure into that many independent cells;
  // functions map to cells by a stable hash of their workflow component, which
  // is what lets Experiment sub-region-shard a region across threads with
  // serial == sharded bit for bit (docs/determinism.md). A cells value > 1 is a
  // *different scenario* (per-cell pools change cold-start times), which is why
  // the field is part of Fingerprint().
  uint32_t cells_per_region = 1;
  // Regions to simulate; defaults to the five calibrated profiles.
  std::vector<workload::RegionProfile> profiles;
  // Where arrivals come from: null = the built-in synthetic generator; set a
  // workload::ReplaySource to drive the scenario from a recorded trace. Shared
  // (sources are immutable) so configs stay cheaply copyable.
  std::shared_ptr<const workload::WorkloadSource> workload;

  ScenarioConfig();

  workload::Calendar MakeCalendar() const;
  // Profiles after applying `scale`.
  std::vector<workload::RegionProfile> ScaledProfiles() const;
  // The configured source, or the shared synthetic default when `workload` is null.
  const workload::WorkloadSource& workload_source() const;

  // Stable hash of *every* field that affects the generated trace — the scenario
  // scalars (including keep-alive), the workload source, and the full per-region
  // profile down to each architecture coefficient, diurnal bump, and timer-period
  // weight. Keys the trace cache: two configs that could produce different traces
  // must not collide here (in particular, a replay run never reuses a synthetic
  // run's cache entry).
  uint64_t Fingerprint() const;
};

// The default full-paper scenario (5 regions, 31 days, seed 42).
ScenarioConfig PaperScenario();

// A reduced scenario for unit/integration tests (~7 days, 0.3x scale).
ScenarioConfig SmallScenario();

}  // namespace coldstart::core

#endif  // COLDSTART_CORE_SCENARIO_H_
