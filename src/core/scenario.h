// Scenario configuration: everything that defines one reproducible experiment.
#ifndef COLDSTART_CORE_SCENARIO_H_
#define COLDSTART_CORE_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "workload/calendar.h"
#include "workload/region_profile.h"

namespace coldstart::core {

struct ScenarioConfig {
  uint64_t seed = 42;
  int days = 31;       // Trace length; the paper's dataset covers 31 days.
  double scale = 1.0;  // Scales function counts and pool sizes (for quick runs).
  bool record_requests = true;
  // Regions to simulate; defaults to the five calibrated profiles.
  std::vector<workload::RegionProfile> profiles;

  ScenarioConfig();

  workload::Calendar MakeCalendar() const;
  // Profiles after applying `scale`.
  std::vector<workload::RegionProfile> ScaledProfiles() const;

  // Stable hash of all generation-relevant fields; keys the trace cache.
  uint64_t Fingerprint() const;
};

// The default full-paper scenario (5 regions, 31 days, seed 42).
ScenarioConfig PaperScenario();

// A reduced scenario for unit/integration tests (~7 days, 0.3x scale).
ScenarioConfig SmallScenario();

}  // namespace coldstart::core

#endif  // COLDSTART_CORE_SCENARIO_H_
