// Cost-vs-latency frontier driver: evaluate a set of mitigation policy
// candidates over one scenario and compute the non-dominated trade-off
// frontier (analysis/pareto.h). This generalizes fig17's single utility
// ratio into the full study: every candidate becomes one (cost, p99) point
// with cost = the resource-cost ledger's pod-seconds + warm-idle-seconds and
// p99 from the streaming cold-start histogram.
//
// Candidates run concurrently on a ParallelSweep; each evaluation is a
// deterministic Experiment::Run, so the points — and the frontier — are
// bit-identical at any thread count (serial == region-sharded == sub-region
// K=4, same contract as everything else in core/).
//
// Point cache: with a cache_dir, each evaluated point persists keyed by
// (scenario fingerprint, candidate name, policy fingerprint). A forecaster
// (or any policy) config change changes the key and forces re-evaluation —
// the cache can never serve a stale configuration (tests/frontier_test.cc).
#ifndef COLDSTART_CORE_FRONTIER_H_
#define COLDSTART_CORE_FRONTIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"

namespace coldstart::core {

struct FrontierCandidate {
  std::string name;
  // Factory (called once per evaluation, inside the sweep job); null = the
  // unmitigated baseline.
  std::function<std::unique_ptr<platform::PlatformPolicy>()> make_policy;
  // Stable hash of the policy's configuration (e.g.
  // ForecastPrewarmPolicy::Options::Fingerprint()); part of the point-cache
  // key so config changes invalidate cached evaluations.
  uint64_t policy_fingerprint = 0;
};

struct FrontierPoint {
  std::string name;
  int64_t cold_starts = 0;
  uint64_t requests = 0;
  double p50_cold_start_s = 0;
  double p99_cold_start_s = 0;
  // Ledger-derived cost axis (trace::RegionCostRecord totals).
  double pod_seconds = 0;
  double warm_idle_seconds = 0;
  bool from_cache = false;
  bool on_frontier = false;

  double cost() const { return pod_seconds + warm_idle_seconds; }
};

struct FrontierResult {
  std::vector<FrontierPoint> points;  // One per candidate, candidate order.
  // Indices into `points`, cost-ascending; strictly monotone (cost up =>
  // p99 down) by the ParetoFrontier contract.
  std::vector<size_t> frontier;
};

// Point-cache key for (scenario, candidate). Exposed for the freshness test:
// any change to the scenario fingerprint, the candidate name, or the policy
// fingerprint must change the key.
uint64_t FrontierPointKey(const ScenarioConfig& config,
                          const FrontierCandidate& candidate);

// Evaluates every candidate over `config` (forced to streaming trace mode)
// and computes the frontier. num_threads: 0 = default pool; the sweep splits
// it across candidates and each experiment's region shards. cache_dir: ""
// disables the point cache.
FrontierResult RunFrontier(const ScenarioConfig& config,
                           const std::vector<FrontierCandidate>& candidates,
                           int num_threads = 0,
                           const std::string& cache_dir = std::string());

// The frontier study as CSV (one row per point, frontier flag included) —
// what pareto_frontier writes next to its report table.
std::string FrontierCsv(const FrontierResult& result);

}  // namespace coldstart::core

#endif  // COLDSTART_CORE_FRONTIER_H_
