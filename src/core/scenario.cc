#include "core/scenario.h"

#include "common/rng.h"

namespace coldstart::core {

ScenarioConfig::ScenarioConfig() : profiles(workload::DefaultRegionProfiles()) {}

workload::Calendar ScenarioConfig::MakeCalendar() const {
  workload::Calendar::Options opts;
  opts.trace_days = days;
  return workload::Calendar(opts);
}

std::vector<workload::RegionProfile> ScenarioConfig::ScaledProfiles() const {
  std::vector<workload::RegionProfile> scaled;
  scaled.reserve(profiles.size());
  for (const auto& p : profiles) {
    scaled.push_back(scale == 1.0 ? p : workload::ScaledProfile(p, scale));
  }
  return scaled;
}

uint64_t ScenarioConfig::Fingerprint() const {
  uint64_t h = MixHash(seed, static_cast<uint64_t>(days));
  h = MixHash(h, static_cast<uint64_t>(scale * 1e6));
  h = MixHash(h, record_requests ? 1 : 0);
  h = MixHash(h, profiles.size());
  for (const auto& p : profiles) {
    h = MixHash(h, static_cast<uint64_t>(p.region));
    h = MixHash(h, static_cast<uint64_t>(p.num_functions));
    h = MixHash(h, static_cast<uint64_t>(p.popularity_alpha * 1e6));
    h = MixHash(h, static_cast<uint64_t>(p.arch.sched_base_s * 1e6));
    h = MixHash(h, static_cast<uint64_t>(p.arch.alloc_stage1_median_s * 1e6));
    h = MixHash(h, static_cast<uint64_t>(p.arch.dep_bandwidth_kb_per_s));
  }
  return h;
}

ScenarioConfig PaperScenario() { return ScenarioConfig(); }

ScenarioConfig SmallScenario() {
  ScenarioConfig config;
  config.days = 7;
  config.scale = 0.3;
  return config;
}

}  // namespace coldstart::core
