#include "core/scenario.h"

#include <cstring>

#include "common/rng.h"

namespace coldstart::core {

namespace {

// Doubles are hashed by bit pattern (common/rng.h): any representable change to
// a coefficient yields a different fingerprint (the old scheme truncated through
// *1e6, which collapsed distinct architectures onto one cache file).
uint64_t MixDouble(uint64_t h, double v) { return MixHashDouble(h, v); }

uint64_t MixDiurnal(uint64_t h, const workload::DiurnalParams& d) {
  h = MixDouble(h, d.floor);
  h = MixHash(h, d.bumps.size());
  for (const auto& bump : d.bumps) {
    h = MixDouble(h, bump.peak_hour);
    h = MixDouble(h, bump.amplitude);
    h = MixDouble(h, bump.concentration);
  }
  h = MixDouble(h, d.weekend_factor);
  h = MixHash(h, static_cast<uint64_t>(d.holiday));
  h = MixDouble(h, d.holiday_level);
  h = MixDouble(h, d.pre_holiday_boost);
  h = MixDouble(h, d.catch_up_boost);
  h = MixDouble(h, d.catch_up_decay_days);
  return h;
}

uint64_t MixArchitecture(uint64_t h, const workload::ColdStartArchitecture& a) {
  h = MixDouble(h, a.alloc_stage1_median_s);
  h = MixDouble(h, a.alloc_sigma);
  h = MixDouble(h, a.alloc_stage_growth);
  h = MixDouble(h, a.alloc_scratch_median_s);
  h = MixDouble(h, a.alloc_scratch_sigma);
  h = MixDouble(h, a.custom_scratch_median_s);
  h = MixDouble(h, a.alloc_congestion_coeff);
  h = MixDouble(h, a.code_base_s);
  h = MixDouble(h, a.code_bandwidth_kb_per_s);
  h = MixDouble(h, a.code_congestion_coeff);
  h = MixDouble(h, a.dep_base_s);
  h = MixDouble(h, a.dep_bandwidth_kb_per_s);
  h = MixDouble(h, a.dep_congestion_coeff);
  h = MixDouble(h, a.sched_base_s);
  h = MixDouble(h, a.sched_sigma);
  h = MixDouble(h, a.sched_queue_coeff_s);
  h = MixDouble(h, a.sched_rate_coeff);
  h = MixDouble(h, a.dep_rate_coeff);
  h = MixDouble(h, a.alloc_rate_coeff);
  h = MixDouble(h, a.code_rate_coeff);
  h = MixDouble(h, a.rate_saturation);
  h = MixDouble(h, a.post_holiday_dep_penalty);
  return h;
}

uint64_t MixProfile(uint64_t h, const workload::RegionProfile& p) {
  h = MixHash(h, static_cast<uint64_t>(p.region));
  h = MixHash(h, static_cast<uint64_t>(p.num_functions));
  h = MixDouble(h, p.single_function_user_fraction);
  h = MixHash(h, static_cast<uint64_t>(p.max_functions_per_user));
  h = MixDouble(h, p.popularity_alpha);
  h = MixDouble(h, p.popularity_min_per_day);
  h = MixDouble(h, p.popularity_max_per_day);
  h = MixDouble(h, p.obs_hot_fraction);
  h = MixDouble(h, p.http_hot_fraction);
  h = MixDouble(h, p.exec_median_s);
  h = MixDouble(h, p.exec_median_sigma);
  h = MixDouble(h, p.exec_request_sigma);
  h = MixDouble(h, p.cpu_median_cores);
  h = MixDouble(h, p.cpu_sigma);
  h = MixDiurnal(h, p.diurnal);
  for (const double w : p.runtime_weights) {
    h = MixDouble(h, w);
  }
  for (const auto& row : p.trigger_given_runtime) {
    for (const double w : row) {
      h = MixDouble(h, w);
    }
  }
  for (const double w : p.config_weights) {
    h = MixDouble(h, w);
  }
  h = MixHash(h, p.timer_period_weights.size());
  for (const auto& [period, weight] : p.timer_period_weights) {
    h = MixHash(h, static_cast<uint64_t>(period));
    h = MixDouble(h, weight);
  }
  h = MixDouble(h, p.bursty_function_fraction);
  h = MixDouble(h, p.burst_amp_median);
  h = MixDouble(h, p.burst_amp_sigma);
  h = MixDouble(h, p.diurnal_exponent_min);
  h = MixDouble(h, p.diurnal_exponent_max);
  h = MixDouble(h, p.java_regime_change_fraction);
  h = MixHash(h, static_cast<uint64_t>(p.java_regime_change_day));
  for (const int size : p.pool_base_size) {
    h = MixHash(h, static_cast<uint64_t>(size));
  }
  h = MixDouble(h, p.pool_refill_per_min);
  h = MixArchitecture(h, p.arch);
  // Cold-start model selection: a different model (or snapshot-restore setting)
  // produces a different trace, so it must invalidate caches and checkpoints.
  h = MixHash(h, static_cast<uint64_t>(p.model.kind));
  h = MixHash(h, p.model.snapshot_restore ? 1 : 0);
  h = MixDouble(h, p.model.restore_base_s);
  h = MixDouble(h, p.model.restore_bandwidth_mb_per_s);
  h = MixDouble(h, p.model.restore_sigma);
  h = MixDouble(h, p.model.snapshot_memory_mb);
  h = MixDouble(h, p.inter_region_rtt_ms);
  h = MixDouble(h, p.single_cluster_fraction);
  return h;
}

}  // namespace

ScenarioConfig::ScenarioConfig() : profiles(workload::DefaultRegionProfiles()) {}

workload::Calendar ScenarioConfig::MakeCalendar() const {
  workload::Calendar::Options opts;
  opts.trace_days = days;
  return workload::Calendar(opts);
}

std::vector<workload::RegionProfile> ScenarioConfig::ScaledProfiles() const {
  std::vector<workload::RegionProfile> scaled;
  scaled.reserve(profiles.size());
  for (const auto& p : profiles) {
    scaled.push_back(scale == 1.0 ? p : workload::ScaledProfile(p, scale));
  }
  return scaled;
}

const workload::WorkloadSource& ScenarioConfig::workload_source() const {
  return workload != nullptr ? *workload : workload::DefaultSyntheticSource();
}

uint64_t ScenarioConfig::Fingerprint() const {
  // Versioned salt: bumping it (together with the cache filename scheme) retires
  // every cache file written under an older, under-hashed fingerprint. v3 added
  // the workload-source hash (synthetic vs replay, and the replayed events); v4
  // added the trace mode — checkpoints are keyed by the fingerprint, and a
  // streaming checkpoint cannot resume a full-trace run or vice versa; v5 added
  // cells_per_region — per-cell pools/loads change the generated trace; v6 adds
  // the per-profile cold-start model selection (provider presets, snapshot
  // restore) and covers the v4 checkpoint layout with its cost ledger.
  uint64_t h = MixHash(HashString("scenario-fingerprint-v6"), seed);
  h = MixHash(h, static_cast<uint64_t>(days));
  h = MixDouble(h, scale);
  h = MixHash(h, record_requests ? 1 : 0);
  h = MixHash(h, static_cast<uint64_t>(trace_mode));
  h = MixHash(h, static_cast<uint64_t>(default_keep_alive));
  h = MixHash(h, static_cast<uint64_t>(cells_per_region));
  h = MixHash(h, workload_source().Fingerprint());
  h = MixHash(h, profiles.size());
  for (const auto& p : profiles) {
    h = MixProfile(h, p);
  }
  return h;
}

ScenarioConfig PaperScenario() { return ScenarioConfig(); }

ScenarioConfig SmallScenario() {
  ScenarioConfig config;
  config.days = 7;
  config.scale = 0.3;
  return config;
}

}  // namespace coldstart::core
