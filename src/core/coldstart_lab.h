// Umbrella header: the public API of the cold-start laboratory.
//
// Typical use (see examples/quickstart.cpp):
//
//   coldstart::core::ScenarioConfig config = coldstart::core::PaperScenario();
//   coldstart::core::Experiment experiment(config);
//   auto result = experiment.RunCached(coldstart::core::Experiment::DefaultCacheDir());
//   auto cdfs = coldstart::analysis::ColdStartTimeCdfs(result.store);
#ifndef COLDSTART_CORE_COLDSTART_LAB_H_
#define COLDSTART_CORE_COLDSTART_LAB_H_

#include "analysis/components.h"
#include "analysis/fits.h"
#include "analysis/group_cdfs.h"
#include "analysis/groups.h"
#include "analysis/holiday.h"
#include "analysis/pareto.h"
#include "analysis/peaks.h"
#include "analysis/pool_size.h"
#include "analysis/region_stats.h"
#include "analysis/report.h"
#include "analysis/utility.h"
#include "core/experiment.h"
#include "core/frontier.h"
#include "core/scenario.h"
#include "core/sweep.h"
#include "platform/provider_models.h"
#include "policy/composite.h"
#include "policy/cross_region.h"
#include "policy/forecast.h"
#include "policy/keepalive.h"
#include "policy/peak_shaving.h"
#include "policy/pool_prediction.h"
#include "policy/prewarm.h"
#include "policy/provisioned.h"
#include "policy/workflow_prewarm.h"
#include "workload/replay_source.h"
#include "workload/workload_source.h"

#endif  // COLDSTART_CORE_COLDSTART_LAB_H_
