// Parallel execution of independent experiment jobs over one shared work queue.
//
// ParallelSweep runs N closures — typically "construct a policy, run an Experiment,
// summarize" — concurrently on std::threads. Jobs sit in a single shared queue
// (an atomic cursor over the job list) and idle workers greedily claim the next
// unclaimed job, so a sweep whose scenarios have wildly different costs (a 31-day
// baseline next to a 2-day ablation) keeps every worker busy until the queue
// drains. There is no per-worker deque or cross-sweep pool: each Run() spawns its
// own worker group and joins it. The thread count is bounded by
// hardware_concurrency and overridable with $COLDSTART_THREADS or an explicit
// constructor argument; with one thread (or one job) the sweep degenerates to a
// plain serial loop with no thread spawned.
//
// Jobs must be independent: they run on different threads with no ordering between
// them. Each job's writes are visible to the caller after Run() returns (Run joins
// all workers). The first exception a job throws is rethrown from Run(); the sweep
// fails fast — jobs not yet claimed when the first error lands are skipped (never
// started), in-flight jobs finish, and the count of skipped jobs and suppressed
// further failures is reported on stderr before the rethrow.
#ifndef COLDSTART_CORE_SWEEP_H_
#define COLDSTART_CORE_SWEEP_H_

#include <functional>
#include <vector>

namespace coldstart::core {

class ParallelSweep {
 public:
  // num_threads: 0 = default ($COLDSTART_THREADS, else hardware_concurrency).
  explicit ParallelSweep(int num_threads = 0);

  // Enqueues a job; returns its index. Not thread-safe against a running sweep.
  size_t Add(std::function<void()> job);

  // Runs every queued job and blocks until all finish (or the first exception,
  // which is rethrown after all workers have stopped). The queue is left empty, so
  // a sweep object can be refilled and rerun.
  void Run();

  int num_threads() const { return num_threads_; }

  // $COLDSTART_THREADS when set (must be a valid integer in [1, 4096] — garbage,
  // 0, negative, and overflowing values abort loudly rather than silently meaning
  // "default"), else hardware_concurrency (at least 1).
  static int DefaultThreads();

 private:
  int num_threads_;
  std::vector<std::function<void()>> jobs_;
};

// Convenience: run fn(i) for i in [0, n) across the default worker pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn, int num_threads = 0);

}  // namespace coldstart::core

#endif  // COLDSTART_CORE_SWEEP_H_
