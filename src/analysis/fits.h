// Cold-start time and inter-arrival distributions with analytic fits (Figure 10).
#ifndef COLDSTART_ANALYSIS_FITS_H_
#define COLDSTART_ANALYSIS_FITS_H_

#include <vector>

#include "stats/ecdf.h"
#include "stats/fitting.h"
#include "trace/trace_store.h"

namespace coldstart::analysis {

// Fig. 10a: cold-start times (seconds) per region (index = region; last entry = all
// regions pooled).
std::vector<stats::Ecdf> ColdStartTimeCdfs(const trace::TraceStore& store);

// Fig. 10c: inter-arrival times between consecutive cold starts (seconds), per region
// with pooled last entry. IATs are computed within each region's time-ordered stream.
std::vector<stats::Ecdf> ColdStartInterArrivalCdfs(const trace::TraceStore& store);

struct DistributionFits {
  stats::LogNormalParams cold_start_lognormal;  // Fit over pooled cold-start times.
  stats::FitQuality cold_start_quality;
  double cold_start_mean = 0;    // Moments of the *fitted* distribution, as the paper
  double cold_start_stddev = 0;  // reports them (mean 3.24, sd 7.10).
  stats::WeibullParams iat_weibull;  // Fit over pooled inter-arrival times.
  stats::FitQuality iat_quality;
  double iat_mean = 0;  // Paper: mean 1.25, sd 3.66.
  double iat_stddev = 0;
};

// Fig. 10b/d: MLE fits over the pooled samples.
DistributionFits FitColdStartDistributions(const trace::TraceStore& store);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_FITS_H_
