#include "analysis/peaks.h"

#include "trace/aggregate.h"

namespace coldstart::analysis {

std::vector<RegionPeakSeries> ComputeRegionPeaks(const trace::TraceStore& store,
                                                 int smooth_window) {
  std::vector<RegionPeakSeries> out;
  constexpr size_t kMinutesPerDay = 1440;
  for (int r = 0; r < trace::kNumRegions; ++r) {
    RegionPeakSeries s;
    s.region = static_cast<trace::RegionId>(r);
    const auto raw = trace::RequestCountSeries(store, r, kMinute);
    s.normalized = stats::MinMaxNormalize(raw);
    s.smoothed = stats::MovingAverage(s.normalized, smooth_window);
    s.daily_peaks = stats::LargestPeakPerPeriod(s.smoothed, kMinutesPerDay);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<FunctionPeakTrough> ComputeFunctionPeakTrough(const trace::TraceStore& store,
                                                          int smooth_window_hours) {
  const auto per_function = trace::PerFunctionRequestSeries(store, kHour);
  const auto cold_starts = trace::ColdStartsPerFunction(store);
  const double days =
      std::max<double>(1.0, static_cast<double>(store.horizon()) / static_cast<double>(kDay));

  std::vector<FunctionPeakTrough> out;
  for (const auto& f : store.functions()) {
    const auto& series = per_function[f.function_id];
    double total = 0;
    for (const double v : series) {
      total += v;
    }
    if (total <= 0) {
      continue;
    }
    FunctionPeakTrough e;
    e.function = f.function_id;
    e.region = f.region;
    e.trigger = trace::GroupOf(f.primary_trigger);
    e.requests_per_day = total / days;
    const auto smoothed = stats::MovingAverage(series, smooth_window_hours);
    e.peak_to_trough = stats::PeakToTroughRatio(smoothed, /*floor=*/1.0);
    e.cold_starts = cold_starts[f.function_id];
    out.push_back(e);
  }
  return out;
}

}  // namespace coldstart::analysis
