#include "analysis/group_cdfs.h"

#include "trace/aggregate.h"

namespace coldstart::analysis {

namespace {

uint32_t ComponentValueUs(const trace::ColdStartRecord& c, ColdStartComponent component) {
  switch (component) {
    case ColdStartComponent::kTotal:
      return c.cold_start_us;
    case ColdStartComponent::kPodAlloc:
      return c.pod_alloc_us;
    case ColdStartComponent::kDeployCode:
      return c.deploy_code_us;
    case ColdStartComponent::kDeployDep:
      return c.deploy_dep_us;
    case ColdStartComponent::kScheduling:
      return c.scheduling_us;
  }
  return 0;
}

template <typename KeyMatcher>
stats::Ecdf ComponentCdf(const trace::TraceStore& store, int region,
                         ColdStartComponent component, const KeyMatcher& matches) {
  stats::Ecdf ecdf;
  for (const auto& c : store.cold_starts()) {
    if (region >= 0 && static_cast<int>(c.region) != region) {
      continue;
    }
    if (!matches(store.function(c.function_id))) {
      continue;
    }
    const uint32_t v = ComponentValueUs(c, component);
    if (component == ColdStartComponent::kDeployDep && v == 0) {
      continue;
    }
    ecdf.Add(ToSeconds(v));
  }
  ecdf.Seal();
  return ecdf;
}

}  // namespace

stats::Ecdf ComponentCdfByRuntime(const trace::TraceStore& store, int region,
                                  int runtime, ColdStartComponent component) {
  return ComponentCdf(store, region, component, [runtime](const trace::FunctionRecord& f) {
    return runtime < 0 || static_cast<int>(f.runtime) == runtime;
  });
}

stats::Ecdf ComponentCdfByTrigger(const trace::TraceStore& store, int region,
                                  int trigger_group, ColdStartComponent component) {
  return ComponentCdf(store, region, component,
                      [trigger_group](const trace::FunctionRecord& f) {
                        return trigger_group < 0 ||
                               static_cast<int>(trace::GroupOf(f.primary_trigger)) ==
                                   trigger_group;
                      });
}

std::vector<RequestsVsColdStarts> ComputeRequestsVsColdStarts(
    const trace::TraceStore& store, int region) {
  const auto requests = trace::RequestsPerFunction(store);
  const auto cold_starts = trace::ColdStartsPerFunction(store);
  std::vector<RequestsVsColdStarts> out;
  for (const auto& f : store.functions()) {
    if (region >= 0 && static_cast<int>(f.region) != region) {
      continue;
    }
    if (requests[f.function_id] == 0) {
      continue;
    }
    RequestsVsColdStarts e;
    e.function = f.function_id;
    e.trigger = trace::GroupOf(f.primary_trigger);
    e.total_requests = requests[f.function_id];
    e.cold_starts = cold_starts[f.function_id];
    out.push_back(e);
  }
  return out;
}

}  // namespace coldstart::analysis
