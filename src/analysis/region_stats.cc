#include "analysis/region_stats.h"

#include <unordered_map>
#include <unordered_set>

#include "trace/aggregate.h"

namespace coldstart::analysis {

namespace {

inline bool Match(int filter, trace::RegionId region) {
  return filter < 0 || static_cast<int>(region) == filter;
}

}  // namespace

std::vector<RegionSizes> ComputeRegionSizes(const trace::TraceStore& store) {
  std::vector<RegionSizes> sizes(trace::kNumRegions);
  std::vector<std::unordered_set<trace::UserId>> users(trace::kNumRegions);
  for (int r = 0; r < trace::kNumRegions; ++r) {
    sizes[static_cast<size_t>(r)].region = static_cast<trace::RegionId>(r);
  }
  for (const auto& f : store.functions()) {
    ++sizes[f.region].functions;
    users[f.region].insert(f.user_id);
  }
  for (int r = 0; r < trace::kNumRegions; ++r) {
    sizes[static_cast<size_t>(r)].users = users[static_cast<size_t>(r)].size();
  }
  for (const auto& req : store.requests()) {
    ++sizes[req.region].requests;
  }
  for (const auto& p : store.pods()) {
    ++sizes[p.region].pods;
  }
  for (const auto& c : store.cold_starts()) {
    ++sizes[c.region].cold_starts;
  }
  return sizes;
}

stats::Ecdf RequestsPerDayPerFunction(const trace::TraceStore& store, int region) {
  const std::vector<uint64_t> counts = trace::RequestsPerFunction(store);
  const double days =
      std::max<double>(1.0, static_cast<double>(store.horizon()) / static_cast<double>(kDay));
  stats::Ecdf ecdf;
  for (const auto& f : store.functions()) {
    if (!Match(region, f.region)) {
      continue;
    }
    const uint64_t total = counts[f.function_id];
    if (total > 0) {
      ecdf.Add(static_cast<double>(total) / days);
    }
  }
  ecdf.Seal();
  return ecdf;
}

stats::Ecdf MeanExecutionTimePerMinute(const trace::TraceStore& store, int region) {
  const auto series = trace::MeanExecutionTimeSeries(store, region, kMinute);
  stats::Ecdf ecdf;
  for (const double v : series) {
    if (v > 0) {
      ecdf.Add(v);
    }
  }
  ecdf.Seal();
  return ecdf;
}

stats::Ecdf MeanCpuUsagePerMinute(const trace::TraceStore& store, int region) {
  const auto series = trace::MeanCpuUsageSeries(store, region, kMinute);
  stats::Ecdf ecdf;
  for (const double v : series) {
    if (v > 0) {
      ecdf.Add(v);
    }
  }
  ecdf.Seal();
  return ecdf;
}

stats::Ecdf FunctionsPerUser(const trace::TraceStore& store, int region) {
  std::unordered_map<trace::UserId, int> counts;
  for (const auto& f : store.functions()) {
    if (Match(region, f.region)) {
      ++counts[f.user_id];
    }
  }
  stats::Ecdf ecdf;
  // LINT-ALLOW(unordered-iter): Ecdf::Seal sorts its samples; the fold order cannot reach the output
  for (const auto& [user, n] : counts) {
    ecdf.Add(static_cast<double>(n));
  }
  ecdf.Seal();
  return ecdf;
}

stats::Ecdf RequestsPerUser(const trace::TraceStore& store, int region) {
  std::unordered_map<trace::UserId, uint64_t> counts;
  // Users with zero requests still count (they own functions); seed them first.
  for (const auto& f : store.functions()) {
    if (Match(region, f.region)) {
      counts.emplace(f.user_id, 0);
    }
  }
  for (const auto& r : store.requests()) {
    if (Match(region, r.region)) {
      ++counts[r.user_id];
    }
  }
  stats::Ecdf ecdf;
  // LINT-ALLOW(unordered-iter): Ecdf::Seal sorts its samples; the fold order cannot reach the output
  for (const auto& [user, n] : counts) {
    ecdf.Add(static_cast<double>(n));
  }
  ecdf.Seal();
  return ecdf;
}

}  // namespace coldstart::analysis
