#include "analysis/holiday.h"

#include <algorithm>

#include "common/check.h"
#include "trace/aggregate.h"

namespace coldstart::analysis {

namespace {

// Daily means from an hourly series over [first_day, last_day].
std::vector<double> DailyMeans(const std::vector<double>& hourly, int first_day,
                               int last_day) {
  std::vector<double> out;
  for (int day = first_day; day <= last_day; ++day) {
    double sum = 0;
    int n = 0;
    for (int h = day * 24; h < (day + 1) * 24; ++h) {
      if (h >= 0 && static_cast<size_t>(h) < hourly.size()) {
        sum += hourly[static_cast<size_t>(h)];
        ++n;
      }
    }
    out.push_back(n > 0 ? sum / n : 0.0);
  }
  return out;
}

void NormalizeToPreHolidayMax(std::vector<double>& daily, int first_day,
                              int holiday_first_day) {
  double mx = 0;
  for (size_t i = 0; i < daily.size(); ++i) {
    const int day = first_day + static_cast<int>(i);
    if (day < holiday_first_day) {
      mx = std::max(mx, daily[i]);
    }
  }
  if (mx <= 0) {
    return;
  }
  for (auto& v : daily) {
    v /= mx;
  }
}

}  // namespace

std::vector<HolidaySeries> ComputeHolidayEffect(const trace::TraceStore& store,
                                                int first_day, int last_day,
                                                int holiday_first_day) {
  COLDSTART_CHECK_LE(first_day, last_day);
  std::vector<HolidaySeries> out;
  for (int r = 0; r < trace::kNumRegions; ++r) {
    HolidaySeries s;
    s.region = static_cast<trace::RegionId>(r);
    s.window_first_day = first_day;

    const auto pods_hourly = trace::RunningPodsSeries(
        store, r, kHour, 1, [](const trace::PodLifetimeRecord&) { return 0; });
    s.pods_normalized = DailyMeans(pods_hourly[0], first_day, last_day);
    NormalizeToPreHolidayMax(s.pods_normalized, first_day, holiday_first_day);

    const auto cpu_hourly = trace::AllocatedCpuCoreSeries(store, r, kHour);
    s.cpu_normalized = DailyMeans(cpu_hourly, first_day, last_day);
    NormalizeToPreHolidayMax(s.cpu_normalized, first_day, holiday_first_day);

    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace coldstart::analysis
