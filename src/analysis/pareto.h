// Non-dominated (Pareto) frontier over (cost, latency) points, both
// lower-is-better. The geometry behind the cost-vs-p99 mitigation study
// (core/frontier.h, examples/pareto_frontier.cpp): a policy configuration is
// on the frontier exactly when no other configuration is at least as cheap
// AND at least as fast, and strictly better on one axis.
#ifndef COLDSTART_ANALYSIS_PARETO_H_
#define COLDSTART_ANALYSIS_PARETO_H_

#include <cstddef>
#include <vector>

namespace coldstart::analysis {

struct ParetoPoint {
  double cost = 0;     // e.g. ledger pod-seconds + warm-idle-seconds.
  double latency = 0;  // e.g. p99 cold-start seconds.
};

// True when `a` dominates `b`: a.cost <= b.cost and a.latency <= b.latency
// with at least one strict inequality.
bool Dominates(const ParetoPoint& a, const ParetoPoint& b);

// Indices of the non-dominated points, sorted by cost ascending. The result
// is strictly monotone — cost strictly increases and latency strictly
// decreases along it — and deterministic: of several identical points the
// lowest input index survives, the rest are reported dominated.
std::vector<size_t> ParetoFrontier(const std::vector<ParetoPoint>& points);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_PARETO_H_
