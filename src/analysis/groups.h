// Group breakdowns by trigger type, runtime, and resource configuration
// (Figures 8 and 9).
#ifndef COLDSTART_ANALYSIS_GROUPS_H_
#define COLDSTART_ANALYSIS_GROUPS_H_

#include <string>
#include <vector>

#include "trace/trace_store.h"

namespace coldstart::analysis {

// The grouping axes of Figure 8's columns.
enum class GroupAxis { kTrigger, kRuntime, kConfig };

int NumKeys(GroupAxis axis);
std::string KeyName(GroupAxis axis, int key);
// Key of a function along an axis.
int KeyOfFunction(GroupAxis axis, const trace::FunctionRecord& f);

// Fig. 8a-c: hourly running pods per group key, [key][hour].
std::vector<std::vector<double>> RunningPodsByGroup(const trace::TraceStore& store,
                                                    int region, GroupAxis axis);

// Fig. 8d-f: for each key, the share of running pods (mean active pods), cold starts
// (newly started pods), and functions. Each column sums to 1 (when non-empty).
struct GroupShares {
  std::vector<double> pods;
  std::vector<double> cold_starts;
  std::vector<double> functions;
};
GroupShares ComputeGroupShares(const trace::TraceStore& store, int region,
                               GroupAxis axis);

// Fig. 9: trigger-group mix per runtime, [runtime][trigger_group], each row summing
// to 1 over functions of that runtime (empty runtimes yield zero rows).
std::vector<std::vector<double>> TriggerMixByRuntime(const trace::TraceStore& store,
                                                     int region);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_GROUPS_H_
