#include "analysis/groups.h"

#include "common/check.h"
#include "trace/aggregate.h"

namespace coldstart::analysis {

int NumKeys(GroupAxis axis) {
  switch (axis) {
    case GroupAxis::kTrigger:
      return trace::kNumTriggerGroups;
    case GroupAxis::kRuntime:
      return trace::kNumRuntimes;
    case GroupAxis::kConfig:
      return trace::kNumConfigGroups;
  }
  return 0;
}

std::string KeyName(GroupAxis axis, int key) {
  switch (axis) {
    case GroupAxis::kTrigger:
      return trace::TriggerGroupName(static_cast<trace::TriggerGroup>(key));
    case GroupAxis::kRuntime:
      return trace::RuntimeName(static_cast<trace::Runtime>(key));
    case GroupAxis::kConfig:
      return trace::ConfigGroupName(static_cast<trace::ConfigGroup>(key));
  }
  return "invalid";
}

int KeyOfFunction(GroupAxis axis, const trace::FunctionRecord& f) {
  switch (axis) {
    case GroupAxis::kTrigger:
      return static_cast<int>(trace::GroupOf(f.primary_trigger));
    case GroupAxis::kRuntime:
      return static_cast<int>(f.runtime);
    case GroupAxis::kConfig:
      return static_cast<int>(trace::ConfigGroupOf(f.config));
  }
  return -1;
}

std::vector<std::vector<double>> RunningPodsByGroup(const trace::TraceStore& store,
                                                    int region, GroupAxis axis) {
  const int keys = NumKeys(axis);
  return trace::RunningPodsSeries(
      store, region, kHour, keys, [&store, axis](const trace::PodLifetimeRecord& p) {
        if (axis == GroupAxis::kConfig) {
          // Pods carry their own configuration (prewarm pools could differ from the
          // function record in future policies).
          return static_cast<int>(trace::ConfigGroupOf(p.config));
        }
        return KeyOfFunction(axis, store.function(p.function_id));
      });
}

GroupShares ComputeGroupShares(const trace::TraceStore& store, int region,
                               GroupAxis axis) {
  const int keys = NumKeys(axis);
  GroupShares shares;
  shares.pods.assign(static_cast<size_t>(keys), 0.0);
  shares.cold_starts.assign(static_cast<size_t>(keys), 0.0);
  shares.functions.assign(static_cast<size_t>(keys), 0.0);

  // Pod share: mean number of active pods ~ integral of pod lifetime per group.
  for (const auto& p : store.pods()) {
    if (region >= 0 && static_cast<int>(p.region) != region) {
      continue;
    }
    const int key = axis == GroupAxis::kConfig
                        ? static_cast<int>(trace::ConfigGroupOf(p.config))
                        : KeyOfFunction(axis, store.function(p.function_id));
    COLDSTART_CHECK_GE(key, 0);
    const double lifetime =
        static_cast<double>(std::max<SimTime>(0, p.death_time - p.cold_start_begin));
    shares.pods[static_cast<size_t>(key)] += lifetime;
  }
  for (const auto& c : store.cold_starts()) {
    if (region >= 0 && static_cast<int>(c.region) != region) {
      continue;
    }
    const auto& f = store.function(c.function_id);
    const int key = axis == GroupAxis::kConfig
                        ? static_cast<int>(trace::ConfigGroupOf(f.config))
                        : KeyOfFunction(axis, f);
    shares.cold_starts[static_cast<size_t>(key)] += 1.0;
  }
  for (const auto& f : store.functions()) {
    if (region >= 0 && static_cast<int>(f.region) != region) {
      continue;
    }
    const int key = KeyOfFunction(axis, f);
    shares.functions[static_cast<size_t>(key)] += 1.0;
  }

  auto normalize = [](std::vector<double>& v) {
    double total = 0;
    for (const double x : v) {
      total += x;
    }
    if (total > 0) {
      for (double& x : v) {
        x /= total;
      }
    }
  };
  normalize(shares.pods);
  normalize(shares.cold_starts);
  normalize(shares.functions);
  return shares;
}

std::vector<std::vector<double>> TriggerMixByRuntime(const trace::TraceStore& store,
                                                     int region) {
  std::vector<std::vector<double>> mix(
      trace::kNumRuntimes, std::vector<double>(trace::kNumTriggerGroups, 0.0));
  for (const auto& f : store.functions()) {
    if (region >= 0 && static_cast<int>(f.region) != region) {
      continue;
    }
    const int rt = static_cast<int>(f.runtime);
    const int tg = static_cast<int>(trace::GroupOf(f.primary_trigger));
    mix[static_cast<size_t>(rt)][static_cast<size_t>(tg)] += 1.0;
  }
  for (auto& row : mix) {
    double total = 0;
    for (const double v : row) {
      total += v;
    }
    if (total > 0) {
      for (double& v : row) {
        v /= total;
      }
    }
  }
  return mix;
}

}  // namespace coldstart::analysis
