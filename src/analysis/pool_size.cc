#include "analysis/pool_size.h"

namespace coldstart::analysis {

const char* ComponentName(ColdStartComponent c) {
  switch (c) {
    case ColdStartComponent::kTotal:
      return "cold start time";
    case ColdStartComponent::kPodAlloc:
      return "pod alloc. time";
    case ColdStartComponent::kDeployCode:
      return "deploy code time";
    case ColdStartComponent::kDeployDep:
      return "deploy dep. time";
    case ColdStartComponent::kScheduling:
      return "scheduling time";
  }
  return "invalid";
}

namespace {

uint32_t ComponentValueUs(const trace::ColdStartRecord& c, ColdStartComponent component) {
  switch (component) {
    case ColdStartComponent::kTotal:
      return c.cold_start_us;
    case ColdStartComponent::kPodAlloc:
      return c.pod_alloc_us;
    case ColdStartComponent::kDeployCode:
      return c.deploy_code_us;
    case ColdStartComponent::kDeployDep:
      return c.deploy_dep_us;
    case ColdStartComponent::kScheduling:
      return c.scheduling_us;
  }
  return 0;
}

}  // namespace

stats::Ecdf PoolSizeDistribution(const trace::TraceStore& store, int region,
                                 trace::PoolSizeClass size_class,
                                 ColdStartComponent component) {
  stats::Ecdf ecdf;
  for (const auto& c : store.cold_starts()) {
    if (region >= 0 && static_cast<int>(c.region) != region) {
      continue;
    }
    const auto& f = store.function(c.function_id);
    if (trace::SizeClassOf(f.config) != size_class) {
      continue;
    }
    const uint32_t v = ComponentValueUs(c, component);
    if (component == ColdStartComponent::kDeployDep && v == 0) {
      continue;  // Functions without layers are excluded from the dep plots.
    }
    ecdf.Add(ToSeconds(v));
  }
  ecdf.Seal();
  return ecdf;
}

std::vector<PoolSizeSummary> ComputePoolSizeSummaries(const trace::TraceStore& store) {
  std::vector<PoolSizeSummary> out;
  for (int r = 0; r < trace::kNumRegions; ++r) {
    for (int s = 0; s < 2; ++s) {
      for (int c = 0; c < kNumColdStartComponents; ++c) {
        PoolSizeSummary e;
        e.region = static_cast<trace::RegionId>(r);
        e.size_class = static_cast<trace::PoolSizeClass>(s);
        e.component = static_cast<ColdStartComponent>(c);
        e.stats = PoolSizeDistribution(store, r, e.size_class, e.component).Summary();
        out.push_back(e);
      }
    }
  }
  return out;
}

}  // namespace coldstart::analysis
