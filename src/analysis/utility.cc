#include "analysis/utility.h"

#include <algorithm>

namespace coldstart::analysis {

double PodUtilityRatio(const trace::PodLifetimeRecord& pod, SimDuration keep_alive) {
  if (pod.cold_start_us == 0) {
    return 0.0;
  }
  const SimDuration lifetime = pod.death_time - pod.cold_start_begin;
  const SimDuration useful =
      lifetime - keep_alive - static_cast<SimDuration>(pod.cold_start_us);
  const double useful_us = std::max<double>(static_cast<double>(useful), 1000.0);
  return useful_us / static_cast<double>(pod.cold_start_us);
}

namespace {

template <typename Matcher>
stats::Ecdf UtilityCdf(const trace::TraceStore& store, int region,
                       SimDuration keep_alive, const Matcher& matches) {
  stats::Ecdf ecdf;
  for (const auto& p : store.pods()) {
    if (region >= 0 && static_cast<int>(p.region) != region) {
      continue;
    }
    if (!matches(store.function(p.function_id))) {
      continue;
    }
    if (p.cold_start_us == 0) {
      continue;
    }
    ecdf.Add(PodUtilityRatio(p, keep_alive));
  }
  ecdf.Seal();
  return ecdf;
}

}  // namespace

stats::Ecdf UtilityByRuntime(const trace::TraceStore& store, int region, int runtime,
                             SimDuration keep_alive) {
  return UtilityCdf(store, region, keep_alive, [runtime](const trace::FunctionRecord& f) {
    return runtime < 0 || static_cast<int>(f.runtime) == runtime;
  });
}

stats::Ecdf UtilityByTrigger(const trace::TraceStore& store, int region,
                             int trigger_group, SimDuration keep_alive) {
  return UtilityCdf(store, region, keep_alive,
                    [trigger_group](const trace::FunctionRecord& f) {
                      return trigger_group < 0 ||
                             static_cast<int>(trace::GroupOf(f.primary_trigger)) ==
                                 trigger_group;
                    });
}

}  // namespace coldstart::analysis
