// Region-level statistics: Figure 1 (sizes), Figure 3 (per-region CDFs), Figure 4
// (per-user CDFs). Operates purely on the Table 1 streams.
#ifndef COLDSTART_ANALYSIS_REGION_STATS_H_
#define COLDSTART_ANALYSIS_REGION_STATS_H_

#include <vector>

#include "stats/ecdf.h"
#include "trace/trace_store.h"

namespace coldstart::analysis {

struct RegionSizes {
  trace::RegionId region = 0;
  uint64_t functions = 0;
  uint64_t users = 0;
  uint64_t requests = 0;
  uint64_t pods = 0;
  uint64_t cold_starts = 0;
};

// One entry per region (Fig. 1's axes plus cold-start counts).
std::vector<RegionSizes> ComputeRegionSizes(const trace::TraceStore& store);

// Fig. 3a: requests per day per function (mean over trace days; zero-request
// functions excluded, as they never appear in the request stream).
stats::Ecdf RequestsPerDayPerFunction(const trace::TraceStore& store, int region);

// Fig. 3b: mean execution time per minute, seconds (minutes with no requests skipped).
stats::Ecdf MeanExecutionTimePerMinute(const trace::TraceStore& store, int region);

// Fig. 3c: mean CPU usage per minute, cores.
stats::Ecdf MeanCpuUsagePerMinute(const trace::TraceStore& store, int region);

// Fig. 4a: functions per user.
stats::Ecdf FunctionsPerUser(const trace::TraceStore& store, int region);

// Fig. 4b: requests per user over the full trace.
stats::Ecdf RequestsPerUser(const trace::TraceStore& store, int region);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_REGION_STATS_H_
