// Cold-start component analysis over time (Figure 11) and component correlation
// matrices (Figure 12).
#ifndef COLDSTART_ANALYSIS_COMPONENTS_H_
#define COLDSTART_ANALYSIS_COMPONENTS_H_

#include <array>
#include <string>
#include <vector>

#include "stats/correlation.h"
#include "trace/aggregate.h"

namespace coldstart::analysis {

// Fig. 11: hourly component means + cold-start counts for one region.
trace::ComponentSeries HourlyComponents(const trace::TraceStore& store, int region);

// Labels for the 6x6 correlation matrix rows/columns, in order: cold start time,
// deploy code, deploy dep, scheduling, pod alloc, number of cold starts.
inline constexpr int kNumCorrelationVars = 6;
const std::array<std::string, kNumCorrelationVars>& CorrelationVarNames();

// Fig. 12: Spearman correlations between per-minute component means and the
// per-minute cold-start count. Minutes with zero cold starts are excluded (their
// component means are undefined).
std::vector<std::vector<stats::CorrelationResult>> ComponentCorrelationMatrix(
    const trace::TraceStore& store, int region);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_COMPONENTS_H_
