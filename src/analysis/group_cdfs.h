// Cold-start time and component CDFs grouped by runtime (Figure 15) and by trigger
// type (Figure 16), plus the Figure 14 requests-vs-cold-starts scatter.
#ifndef COLDSTART_ANALYSIS_GROUP_CDFS_H_
#define COLDSTART_ANALYSIS_GROUP_CDFS_H_

#include <vector>

#include "analysis/pool_size.h"
#include "stats/ecdf.h"
#include "trace/trace_store.h"

namespace coldstart::analysis {

// Cold-start component CDF for one runtime in one region (runtime = -1 for 'all').
// For kDeployDep, zeros are excluded (consistent with Figs. 15d/16d axes).
stats::Ecdf ComponentCdfByRuntime(const trace::TraceStore& store, int region,
                                  int runtime, ColdStartComponent component);

// Same, grouped by trigger group (trigger_group = -1 for 'all').
stats::Ecdf ComponentCdfByTrigger(const trace::TraceStore& store, int region,
                                  int trigger_group, ColdStartComponent component);

// Fig. 14: one point per function with >= 1 request.
struct RequestsVsColdStarts {
  trace::FunctionId function = 0;
  trace::TriggerGroup trigger = trace::TriggerGroup::kUnknown;
  uint64_t total_requests = 0;
  uint64_t cold_starts = 0;
};
std::vector<RequestsVsColdStarts> ComputeRequestsVsColdStarts(
    const trace::TraceStore& store, int region);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_GROUP_CDFS_H_
