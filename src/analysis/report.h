// Rendering helpers shared by the bench harnesses: CDF quantile rows, CDF curves,
// and correlation matrices as aligned text tables.
#ifndef COLDSTART_ANALYSIS_REPORT_H_
#define COLDSTART_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/table.h"
#include "stats/correlation.h"
#include "stats/ecdf.h"
#include "trace/records.h"

namespace coldstart::analysis {

// Appends one row "label, count, p10, p25, p50, p75, p90, p99, mean" to `table`.
// The table must have been created with QuantileHeaders(). Empty distributions
// render as count 0 with "n/a" statistics — never fabricated zeros.
std::vector<std::string> QuantileHeaders(const std::string& label_header);
void AddQuantileRow(TextTable& table, const std::string& label, const stats::Ecdf& ecdf);
// Same row from a streaming LogHistogram (trace::StreamingAggregates): quantiles
// carry bucket-resolution error (one bucket-growth factor, ~2.3% at 64/decade)
// instead of being exact, which is what lets the month/year-scale streaming runs
// report without materializing samples.
void AddQuantileRow(TextTable& table, const std::string& label,
                    const LogHistogram& hist);

// Renders a CDF as `points` (x, F(x)) rows with log-spaced x.
TextTable CdfCurveTable(const std::string& x_header, const stats::Ecdf& ecdf,
                        int points = 20);

// Renders a labelled correlation matrix; significant cells (p < 0.05) carry a '*'
// suffix like the paper's Figure 12.
TextTable CorrelationTable(const std::vector<std::string>& names,
                           const std::vector<std::vector<stats::CorrelationResult>>& m);

// Resource-cost rows (platform::ResourceCostLedger records): pod-hours of total
// pod lifetime, warm-idle-hours spent holding requests nobody sent, snapshot
// GB-hours of resident snapshot memory, and from-scratch pod creations. The
// table must have been created with CostHeaders().
std::vector<std::string> CostHeaders(const std::string& label_header);
void AddCostRow(TextTable& table, const std::string& label,
                const trace::RegionCostRecord& cost);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_REPORT_H_
