// Peak-time and peak-to-trough analysis (Figures 5 and 6).
#ifndef COLDSTART_ANALYSIS_PEAKS_H_
#define COLDSTART_ANALYSIS_PEAKS_H_

#include <vector>

#include "stats/timeseries.h"
#include "trace/trace_store.h"

namespace coldstart::analysis {

struct RegionPeakSeries {
  trace::RegionId region = 0;
  std::vector<double> normalized;        // Per-minute requests, min-max normalized.
  std::vector<double> smoothed;          // Same, after moving-average smoothing.
  std::vector<stats::Peak> daily_peaks;  // Largest smoothed peak each day.
};

// Fig. 5: normalized per-minute request series + daily peaks, one entry per region.
// `smooth_window` is in minutes (the paper detects peaks on a smoothed signal).
std::vector<RegionPeakSeries> ComputeRegionPeaks(const trace::TraceStore& store,
                                                 int smooth_window = 61);

struct FunctionPeakTrough {
  trace::FunctionId function = 0;
  trace::RegionId region = 0;
  trace::TriggerGroup trigger = trace::TriggerGroup::kUnknown;
  double requests_per_day = 0;  // Mean over trace days.
  double peak_to_trough = 1;    // On the smoothed hourly series.
  uint64_t cold_starts = 0;
};

// Fig. 6: per-function peak-to-trough ratio vs. request volume and cold starts.
// Functions with no requests are skipped. The trough floor is 1 request/bucket, as
// functions with no identifiable peaks report a ratio of 1 (figure caption).
std::vector<FunctionPeakTrough> ComputeFunctionPeakTrough(const trace::TraceStore& store,
                                                          int smooth_window_hours = 3);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_PEAKS_H_
