#include "analysis/fits.h"

#include <algorithm>

namespace coldstart::analysis {

std::vector<stats::Ecdf> ColdStartTimeCdfs(const trace::TraceStore& store) {
  std::vector<std::vector<double>> samples(trace::kNumRegions + 1);
  for (const auto& c : store.cold_starts()) {
    const double s = ToSeconds(c.cold_start_us);
    samples[c.region].push_back(s);
    samples[trace::kNumRegions].push_back(s);
  }
  std::vector<stats::Ecdf> out;
  out.reserve(samples.size());
  for (auto& v : samples) {
    out.emplace_back(std::move(v));
  }
  return out;
}

std::vector<stats::Ecdf> ColdStartInterArrivalCdfs(const trace::TraceStore& store) {
  // Cold starts are sorted by timestamp after Seal(); track the previous event per
  // region in one pass.
  std::vector<SimTime> last(trace::kNumRegions, -1);
  std::vector<std::vector<double>> samples(trace::kNumRegions + 1);
  for (const auto& c : store.cold_starts()) {
    if (last[c.region] >= 0) {
      const double iat = ToSeconds(c.timestamp - last[c.region]);
      if (iat > 0) {
        samples[c.region].push_back(iat);
        samples[trace::kNumRegions].push_back(iat);
      }
    }
    last[c.region] = c.timestamp;
  }
  std::vector<stats::Ecdf> out;
  out.reserve(samples.size());
  for (auto& v : samples) {
    out.emplace_back(std::move(v));
  }
  return out;
}

DistributionFits FitColdStartDistributions(const trace::TraceStore& store) {
  DistributionFits fits;

  std::vector<double> cs;
  cs.reserve(store.cold_starts().size());
  for (const auto& c : store.cold_starts()) {
    if (c.cold_start_us > 0) {
      cs.push_back(ToSeconds(c.cold_start_us));
    }
  }
  if (cs.size() >= 2) {
    fits.cold_start_lognormal = stats::FitLogNormalMle(cs);
    std::sort(cs.begin(), cs.end());
    fits.cold_start_quality = stats::EvaluateLogNormalFit(cs, fits.cold_start_lognormal);
    fits.cold_start_mean = fits.cold_start_lognormal.Mean();
    fits.cold_start_stddev = fits.cold_start_lognormal.StdDev();
  }

  const auto iat_cdfs = ColdStartInterArrivalCdfs(store);
  std::vector<double> iat = iat_cdfs.back().sorted_samples();
  if (iat.size() >= 2) {
    fits.iat_weibull = stats::FitWeibullMle(iat);
    fits.iat_quality = stats::EvaluateWeibullFit(iat, fits.iat_weibull);
    fits.iat_mean = fits.iat_weibull.Mean();
    fits.iat_stddev = fits.iat_weibull.StdDev();
  }
  return fits;
}

}  // namespace coldstart::analysis
