// Pod utility ratio (§4.5, Figure 17) — the paper's proposed metric.
//
// utility = useful lifetime / cold-start time, where useful lifetime is the pod's
// total lifetime minus the keep-alive window and minus the cold start itself (the
// time the pod is actually available to do work). A ratio <= 1 means the pod was
// usable for no longer than its own cold start took.
#ifndef COLDSTART_ANALYSIS_UTILITY_H_
#define COLDSTART_ANALYSIS_UTILITY_H_

#include <vector>

#include "stats/ecdf.h"
#include "trace/trace_store.h"

namespace coldstart::analysis {

// Utility ratio of one pod record under the given keep-alive constant. Useful lifetime
// is floored at 1 ms so ratios stay positive on log axes.
double PodUtilityRatio(const trace::PodLifetimeRecord& pod,
                       SimDuration keep_alive = kMinute);

// Fig. 17a: utility CDF for one runtime (-1 = all) in one region.
stats::Ecdf UtilityByRuntime(const trace::TraceStore& store, int region, int runtime,
                             SimDuration keep_alive = kMinute);

// Fig. 17b: utility CDF for one trigger group (-1 = all).
stats::Ecdf UtilityByTrigger(const trace::TraceStore& store, int region,
                             int trigger_group, SimDuration keep_alive = kMinute);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_UTILITY_H_
