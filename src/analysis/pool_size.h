// Small- vs. large-pool cold-start distributions (Figure 13).
//
// The paper splits functions into small pods (<= 400 millicores and 256 MB) and large
// pods (everything bigger) and shows violin plots of total cold-start time and each
// component. We report the distribution summaries (quartiles + tails), which capture
// the violin's shape, plus the per-stage allocation modes.
#ifndef COLDSTART_ANALYSIS_POOL_SIZE_H_
#define COLDSTART_ANALYSIS_POOL_SIZE_H_

#include <vector>

#include "stats/ecdf.h"
#include "trace/trace_store.h"

namespace coldstart::analysis {

enum class ColdStartComponent {
  kTotal = 0,
  kPodAlloc,
  kDeployCode,
  kDeployDep,
  kScheduling,
};
inline constexpr int kNumColdStartComponents = 5;
const char* ComponentName(ColdStartComponent c);

// Cold-start samples (seconds) for one region, one size class, one component.
// For kDeployDep, zero values (functions without layers) are excluded, matching the
// figure ("deploy dependency time is zero and excluded from plots").
stats::Ecdf PoolSizeDistribution(const trace::TraceStore& store, int region,
                                 trace::PoolSizeClass size_class,
                                 ColdStartComponent component);

struct PoolSizeSummary {
  trace::RegionId region = 0;
  trace::PoolSizeClass size_class = trace::PoolSizeClass::kSmall;
  ColdStartComponent component = ColdStartComponent::kTotal;
  stats::SummaryStats stats;
};

// All (region x size class x component) summaries; the Fig. 13 grid.
std::vector<PoolSizeSummary> ComputePoolSizeSummaries(const trace::TraceStore& store);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_POOL_SIZE_H_
