#include "analysis/pareto.h"

#include <algorithm>
#include <numeric>

namespace coldstart::analysis {

bool Dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.cost > b.cost || a.latency > b.latency) {
    return false;
  }
  return a.cost < b.cost || a.latency < b.latency;
}

std::vector<size_t> ParetoFrontier(const std::vector<ParetoPoint>& points) {
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // Sort by (cost, latency, index): the index tiebreak makes duplicate points
  // resolve to the lowest input index no matter the sort implementation.
  std::sort(order.begin(), order.end(), [&points](size_t a, size_t b) {
    const ParetoPoint& pa = points[a];
    const ParetoPoint& pb = points[b];
    if (pa.cost != pb.cost) {
      return pa.cost < pb.cost;
    }
    if (pa.latency != pb.latency) {
      return pa.latency < pb.latency;
    }
    return a < b;
  });
  // Sweep cost-ascending keeping strict latency improvements. Equal-cost
  // points sort fastest-first, so only the best of each cost level can
  // survive — the frontier is strictly monotone on both axes.
  std::vector<size_t> frontier;
  double best_latency = 0;
  for (const size_t i : order) {
    if (frontier.empty() || points[i].latency < best_latency) {
      frontier.push_back(i);
      best_latency = points[i].latency;
    }
  }
  return frontier;
}

}  // namespace coldstart::analysis
