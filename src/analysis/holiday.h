// Holiday-effect analysis (Figure 7): per-day allocated pods and allocated CPU around
// the holiday window, normalized to the pre-holiday maximum.
#ifndef COLDSTART_ANALYSIS_HOLIDAY_H_
#define COLDSTART_ANALYSIS_HOLIDAY_H_

#include <vector>

#include "trace/trace_store.h"

namespace coldstart::analysis {

struct HolidaySeries {
  trace::RegionId region = 0;
  // Index i = trace day window_first_day + i.
  std::vector<double> pods_normalized;
  std::vector<double> cpu_normalized;
  int window_first_day = 0;
};

// Daily mean running pods and allocated CPU cores for days [first_day, last_day],
// normalized to each series' maximum over the days before `holiday_first_day`.
std::vector<HolidaySeries> ComputeHolidayEffect(const trace::TraceStore& store,
                                                int first_day, int last_day,
                                                int holiday_first_day);

}  // namespace coldstart::analysis

#endif  // COLDSTART_ANALYSIS_HOLIDAY_H_
