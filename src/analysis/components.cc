#include "analysis/components.h"

namespace coldstart::analysis {

trace::ComponentSeries HourlyComponents(const trace::TraceStore& store, int region) {
  return trace::ColdStartComponentSeries(store, region, kHour);
}

const std::array<std::string, kNumCorrelationVars>& CorrelationVarNames() {
  static const std::array<std::string, kNumCorrelationVars> kNames = {
      "cold start time", "deploy code time", "deploy dep. time",
      "scheduling time", "pod alloc. time",  "num. cold starts",
  };
  return kNames;
}

std::vector<std::vector<stats::CorrelationResult>> ComponentCorrelationMatrix(
    const trace::TraceStore& store, int region) {
  const trace::ComponentSeries s = trace::ColdStartComponentSeries(store, region, kMinute);
  std::vector<std::vector<double>> vars(kNumCorrelationVars);
  for (size_t i = 0; i < s.count.size(); ++i) {
    if (s.count[i] <= 0) {
      continue;  // No cold starts this minute: component means are undefined.
    }
    vars[0].push_back(s.total[i]);
    vars[1].push_back(s.deploy_code[i]);
    vars[2].push_back(s.deploy_dep[i]);
    vars[3].push_back(s.scheduling[i]);
    vars[4].push_back(s.pod_alloc[i]);
    vars[5].push_back(s.count[i]);
  }
  return stats::SpearmanMatrix(vars);
}

}  // namespace coldstart::analysis
