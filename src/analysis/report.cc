#include "analysis/report.h"

#include "common/check.h"

namespace coldstart::analysis {

std::vector<std::string> QuantileHeaders(const std::string& label_header) {
  return {label_header, "count", "p10", "p25", "p50", "p75", "p90", "p99", "mean"};
}

namespace {

// One row shape for every quantile source (exact Ecdf or streaming histogram):
// anything with Quantile(double) and Mean() fits.
template <typename Distribution>
void AddRow(TextTable& table, const std::string& label, uint64_t count,
            const Distribution& dist) {
  table.Row()
      .Cell(label)
      .Cell(count)
      .Cell(dist.Quantile(0.10), 4)
      .Cell(dist.Quantile(0.25), 4)
      .Cell(dist.Quantile(0.50), 4)
      .Cell(dist.Quantile(0.75), 4)
      .Cell(dist.Quantile(0.90), 4)
      .Cell(dist.Quantile(0.99), 4)
      .Cell(dist.Mean(), 4);
}

}  // namespace

void AddQuantileRow(TextTable& table, const std::string& label, const stats::Ecdf& ecdf) {
  AddRow(table, label, static_cast<uint64_t>(ecdf.size()), ecdf);
}

void AddQuantileRow(TextTable& table, const std::string& label,
                    const LogHistogram& hist) {
  AddRow(table, label, hist.total_count(), hist);
}

TextTable CdfCurveTable(const std::string& x_header, const stats::Ecdf& ecdf, int points) {
  TextTable table({x_header, "cdf"});
  for (const auto& [x, f] : ecdf.CurveLogX(points)) {
    table.Row().Cell(x, 5).Cell(f, 4);
  }
  return table;
}

TextTable CorrelationTable(const std::vector<std::string>& names,
                           const std::vector<std::vector<stats::CorrelationResult>>& m) {
  COLDSTART_CHECK_EQ(names.size(), m.size());
  std::vector<std::string> headers = {""};
  headers.insert(headers.end(), names.begin(), names.end());
  TextTable table(headers);
  for (size_t i = 0; i < m.size(); ++i) {
    table.Row().Cell(names[i]);
    for (size_t j = 0; j < m[i].size(); ++j) {
      std::string cell = FormatDouble(m[i][j].rho, 2);
      if (m[i][j].significant()) {
        cell += '*';
      }
      table.Cell(cell);
    }
  }
  return table;
}

}  // namespace coldstart::analysis
