#include "analysis/report.h"

#include "common/check.h"

namespace coldstart::analysis {

std::vector<std::string> QuantileHeaders(const std::string& label_header) {
  return {label_header, "count", "p10", "p25", "p50", "p75", "p90", "p99", "mean"};
}

namespace {

// One row shape for every quantile source (exact Ecdf or streaming histogram):
// anything with Quantile(double) and Mean() fits.
template <typename Distribution>
void AddRow(TextTable& table, const std::string& label, uint64_t count,
            const Distribution& dist) {
  table.Row()
      .Cell(label)
      .Cell(count)
      .Cell(dist.Quantile(0.10), 4)
      .Cell(dist.Quantile(0.25), 4)
      .Cell(dist.Quantile(0.50), 4)
      .Cell(dist.Quantile(0.75), 4)
      .Cell(dist.Quantile(0.90), 4)
      .Cell(dist.Quantile(0.99), 4)
      .Cell(dist.Mean(), 4);
}

}  // namespace

void AddQuantileRow(TextTable& table, const std::string& label, const stats::Ecdf& ecdf) {
  AddRow(table, label, static_cast<uint64_t>(ecdf.size()), ecdf);
}

void AddQuantileRow(TextTable& table, const std::string& label,
                    const LogHistogram& hist) {
  AddRow(table, label, hist.total_count(), hist);
}

TextTable CdfCurveTable(const std::string& x_header, const stats::Ecdf& ecdf, int points) {
  TextTable table({x_header, "cdf"});
  for (const auto& [x, f] : ecdf.CurveLogX(points)) {
    table.Row().Cell(x, 5).Cell(f, 4);
  }
  return table;
}

std::vector<std::string> CostHeaders(const std::string& label_header) {
  return {label_header, "pod_hours", "warm_idle_hours", "idle_frac",
          "snapshot_gb_hours", "scratch_creations"};
}

void AddCostRow(TextTable& table, const std::string& label,
                const trace::RegionCostRecord& cost) {
  const double pod_hours = cost.pod_seconds() / 3600.0;
  const double idle_hours = cost.warm_idle_seconds() / 3600.0;
  table.Row()
      .Cell(label)
      .Cell(pod_hours, 2)
      .Cell(idle_hours, 2)
      .Cell(pod_hours > 0 ? idle_hours / pod_hours : 0.0, 3)
      .Cell(cost.snapshot_mb_seconds() / (1024.0 * 3600.0), 2)
      .Cell(static_cast<uint64_t>(cost.scratch_creations));
}

TextTable CorrelationTable(const std::vector<std::string>& names,
                           const std::vector<std::vector<stats::CorrelationResult>>& m) {
  COLDSTART_CHECK_EQ(names.size(), m.size());
  std::vector<std::string> headers = {""};
  headers.insert(headers.end(), names.begin(), names.end());
  TextTable table(headers);
  for (size_t i = 0; i < m.size(); ++i) {
    table.Row().Cell(names[i]);
    for (size_t j = 0; j < m[i].size(); ++j) {
      std::string cell = FormatDouble(m[i][j].rho, 2);
      if (m[i][j].significant()) {
        cell += '*';
      }
      table.Cell(cell);
    }
  }
  return table;
}

}  // namespace coldstart::analysis
